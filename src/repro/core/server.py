"""The Matrix server (§3.2.3) — "the heart of our distributed middleware".

Responsibilities implemented here, mirroring the paper:

* **Routing** — on a spatially tagged packet from the co-located game
  server, an O(1) overlap-table lookup yields the consistency set; the
  packet is forwarded to those peers, which verify its range and hand
  it to their own game servers.
* **Splitting** — on sustained overload, acquire a host from the pool,
  split the partition (default: split-to-left), spawn a child Matrix
  server + game server pair, transfer the map state, then atomically
  announce the new ranges to the MC.  Purely local decisions; recursion
  happens naturally because the policy keeps firing while overloaded.
* **Reclamation** — on sustained underload, reclaim the youngest
  childless child (LIFO keeps merged partitions rectangular), evacuate
  its clients to the parent's game server, transfer state back, release
  the host to the pool, and announce the merge to the MC.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.config import MatrixConfig
from repro.core.messages import (
    ConsistencyQuery,
    ConsistencyReply,
    DeliverPacket,
    LoadGossip,
    LoadReport,
    OverlapTableUpdate,
    ReclaimAck,
    ReclaimNotice,
    ReclaimRequest,
    RegisterServer,
    SetRange,
    SpatialPacket,
    SplitGrant,
    SplitNotice,
    StateBegin,
    StateChunk,
    StateDone,
)
from repro.core.policy import ChildLoad, Decision, LoadPolicy
from repro.core.splitting import SplitStrategy, strategy_by_name
from repro.geometry import Rect, RegionIndex, Vec2, metric_by_name
from repro.net.message import Message
from repro.net.node import Node


class Fabric(Protocol):
    """Deployment services a Matrix server calls out to.

    These model out-of-band infrastructure: the server pool's
    provisioning workflow and the local game server's own data (client
    positions are read only at split time, to place a load-weighted
    cut).
    """

    def acquire_host(self, callback) -> None:
        """Request a spare host; callback gets a host id or ``None``."""

    def spawn_pair(self, host_id: str, partition: Rect, parent: str, callback) -> None:
        """Create a Matrix+game server pair; callback gets (ms, gs) names."""

    def decommission_pair(self, matrix_name: str, host_id: str) -> None:
        """Remove a reclaimed pair from the network, free its host."""

    def client_positions(self, game_server: str) -> Sequence[Vec2]:
        """Positions of the clients on *game_server* (split-time only)."""


@dataclass(slots=True)
class ChildRecord:
    """Bookkeeping for one spawned child (LIFO reclaim stack entry)."""

    matrix_name: str
    game_server: str
    host_id: str
    born_at: float


@dataclass(slots=True)
class _IncomingTransfer:
    sender: str
    total_chunks: int  # 0 until the StateBegin arrives
    received: int
    context: str


class MatrixServer(Node):
    """One Matrix middleware server, co-located with one game server."""

    _transfer_ids = itertools.count(1)
    _query_ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        game_server: str,
        config: MatrixConfig,
        fabric: Fabric,
        partition: Rect,
        parent: str | None = None,
        host_id: str = "host-0",
        coordinator: str = "mc",
        strategy: SplitStrategy | None = None,
    ) -> None:
        super().__init__(name, service_rate=config.matrix_service_rate)
        self._config = config
        self._metric = metric_by_name(config.metric_name, world=config.world)
        self._game_server = game_server
        self._fabric = fabric
        self._partition = partition
        self._parent = parent
        self._host_id = host_id
        self._coordinator = coordinator
        self._strategy = strategy or strategy_by_name(config.split_strategy)
        self._policy = LoadPolicy(config.policy)

        # One overlap table per visibility radius (§3.1): the default
        # plus any exception radii the game registered.
        self._tables: dict[float, RegionIndex] = {}
        self._default_radius = config.visibility_radius
        self._table_version = 0
        self._partitions: dict[str, Rect] = {}
        self._directory: dict[str, Rect] = {}
        self._server_map: dict[str, str] = {}

        self._children: list[ChildRecord] = []
        self._child_loads: dict[str, ChildLoad] = {}
        self._busy = False
        self._dying = False
        self._client_count = 0

        # Split-in-flight context.
        self._pending_kept: Rect | None = None
        self._pending_given: Rect | None = None
        self._pending_host: str | None = None
        self._pending_child: tuple[str, str] | None = None
        # Transfers.
        self._outgoing: dict[int, str] = {}  # transfer id -> context
        self._incoming: dict[int, _IncomingTransfer] = {}
        # Reclaim-in-flight context (on the parent side).
        self._reclaiming: ChildRecord | None = None
        # Non-proximal query relay: mc request id -> (gs request id).
        self._query_relay: dict[int, int] = {}

        # Statistics the harness and benches read.
        self.radius_fallbacks = 0
        self.forwarded_packets = 0
        self.delivered_packets = 0
        self.stale_forwards = 0
        self.misrouted_packets = 0
        self.local_only_packets = 0
        self.failed_splits = 0
        self.splits_completed = 0
        self.reclaims_completed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def partition(self) -> Rect:
        """The map range this server currently manages."""
        return self._partition

    @property
    def game_server(self) -> str:
        """Name of the co-located game server."""
        return self._game_server

    @property
    def parent(self) -> str | None:
        """Name of the Matrix server that spawned this one."""
        return self._parent

    @property
    def children(self) -> list[ChildRecord]:
        """Live children, oldest first (copy)."""
        return list(self._children)

    @property
    def host_id(self) -> str:
        """Pool host this server runs on."""
        return self._host_id

    @property
    def policy(self) -> LoadPolicy:
        """The split/reclaim policy state machine."""
        return self._policy

    @property
    def table_version(self) -> int:
        """Version of the installed overlap table (0 = none yet)."""
        return self._table_version

    @property
    def busy(self) -> bool:
        """True while a split or reclaim is in flight."""
        return self._busy

    @property
    def dying(self) -> bool:
        """True once this server is being reclaimed."""
        return self._dying

    @property
    def client_count(self) -> int:
        """Client count from the latest game-server load report."""
        return self._client_count

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register_with_coordinator(self) -> None:
        """Announce this server's map range to the MC (bootstrap only;
        splits/reclaims are announced atomically by the parent)."""
        reg = RegisterServer(
            matrix_server=self.name,
            game_server=self._game_server,
            partition=self._partition,
            visibility_radius=self._config.visibility_radius,
        )
        self.send(
            self._coordinator,
            "mc.register",
            reg,
            size_bytes=self._config.wire.control_bytes,
        )

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        kind = message.kind
        if kind == "game.spatial":
            self._on_spatial(message)
        elif kind == "matrix.forward":
            self._on_forward(message)
        elif kind == "matrix.load":
            self._on_load_report(message.payload)
        elif kind == "matrix.gossip":
            self._on_gossip(message.payload)
        elif kind == "mc.table":
            self._on_table(message.payload)
        elif kind == "mc.failover":
            # A standby coordinator promoted itself; follow it.
            self._coordinator = message.payload
        elif kind == "matrix.query":
            self._on_game_query(message.payload)
        elif kind == "mc.reply":
            self._on_mc_reply(message.payload)
        elif kind == "matrix.ctl.split_grant":
            self._on_split_grant(message.payload)
        elif kind == "matrix.state.begin":
            self._on_state_begin(message.src, message.payload)
        elif kind == "matrix.state.chunk":
            self._on_state_chunk(message.src, message.payload)
        elif kind == "matrix.state.done":
            self._on_state_done(message.payload)
        elif kind == "matrix.ctl.reclaim_req":
            self._on_reclaim_request(message.src, message.payload)
        elif kind == "matrix.ctl.reclaim_nack":
            self._on_reclaim_nack()
        elif kind == "matrix.ctl.reclaim_ack":
            self._on_reclaim_ack(message.payload)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @property
    def _table(self) -> RegionIndex | None:
        """The default-radius overlap table (None until the first push)."""
        return self._tables.get(self._default_radius)

    def _table_for(self, radius: float | None) -> RegionIndex | None:
        """The overlap table for *radius* (default when None/unknown).

        An unknown exception radius falls back to the default table —
        counted, so operators can see mis-registered radii.
        """
        if radius is None:
            return self._table
        table = self._tables.get(radius)
        if table is None:
            self.radius_fallbacks += 1
            return self._table
        return table

    def _on_spatial(self, message: Message) -> None:
        """Route a tagged packet from the local game server (§3.1)."""
        packet: SpatialPacket = message.payload
        table = self._table_for(packet.radius)
        if table is None:
            # Single-server game (or table not yet received): no peers.
            self.local_only_packets += 1
            return
        point = packet.route_point()
        targets: set[str] = set()
        if table.partition.contains(point):
            targets.update(table.lookup(point))
        else:
            # The client has not been redirected yet (split in
            # progress): hand the packet to the partition owner.
            owner = self._owner_of(point)
            if owner is not None and owner != self.name:
                self.misrouted_packets += 1
                targets.add(owner)
        if packet.dest is not None and not self._partition.contains(packet.dest):
            # Packet explicitly addressed to a remote point (projectile
            # impact, targeted ability): its owner must process it too.
            owner = self._owner_of(packet.dest)
            if owner is not None and owner != self.name:
                targets.add(owner)
        for peer in targets:
            self.send(peer, "matrix.forward", packet, size_bytes=message.size_bytes)
            self.forwarded_packets += 1

    def _on_forward(self, message: Message) -> None:
        """A packet from a peer: verify its range, pass to the game
        server (§3.2.3: 'after verifying the packet's range')."""
        packet: SpatialPacket = message.payload
        radius = (
            packet.radius
            if packet.radius is not None
            else self._config.visibility_radius
        )
        reach = self._metric.expand_rect(self._partition, radius)
        relevant = reach.contains_closed(packet.route_point()) or (
            packet.dest is not None and self._partition.contains(packet.dest)
        )
        if not relevant:
            self.stale_forwards += 1
            return
        self.delivered_packets += 1
        self.send(
            self._game_server,
            "matrix.deliver",
            DeliverPacket(packet=packet),
            size_bytes=message.size_bytes,
        )

    def _owner_of(self, point: Vec2) -> str | None:
        for ms_name, rect in self._partitions.items():
            if rect.contains(point):
                return ms_name
        return None

    # ------------------------------------------------------------------
    # Table installation
    # ------------------------------------------------------------------
    def _on_table(self, update: OverlapTableUpdate) -> None:
        if update.version <= self._table_version:
            return  # stale push ordering
        self._table_version = update.version
        self._partition = update.partition
        self._default_radius = update.default_radius
        self._tables = {
            radius: RegionIndex(update.partition, cells)
            for radius, cells in update.tables.items()
        }
        self._partitions = update.partitions
        self._directory = update.game_servers
        self._server_map = update.server_map
        directive = SetRange(
            partition=update.partition, directory=dict(self._directory)
        )
        size = (
            len(self._directory) * self._config.wire.directory_entry_bytes
            + self._config.wire.control_bytes
        )
        self.send(self._game_server, "gs.set_range", directive, size_bytes=size)

    # ------------------------------------------------------------------
    # Load management
    # ------------------------------------------------------------------
    def _on_load_report(self, report: LoadReport) -> None:
        if self._dying:
            return
        self._client_count = report.client_count
        if self._parent is not None:
            gossip = LoadGossip(
                server=self.name,
                client_count=report.client_count,
                has_children=bool(self._children),
                timestamp=self.sim.now,
            )
            self.send(
                self._parent,
                "matrix.gossip",
                gossip,
                size_bytes=self._config.wire.load_report_bytes,
            )
        youngest = self._youngest_child_load()
        decision = self._policy.on_load_report(
            self.sim.now, report.client_count, youngest, self._busy
        )
        if decision is Decision.SPLIT:
            self._begin_split()
        elif decision is Decision.RECLAIM:
            self._begin_reclaim()

    def _youngest_child_load(self) -> ChildLoad | None:
        if not self._children:
            return None
        child = self._children[-1]
        load = self._child_loads.get(child.matrix_name)
        if load is None:
            return None  # no gossip yet; not reclaimable
        return load

    def _on_gossip(self, gossip: LoadGossip) -> None:
        for child in self._children:
            if child.matrix_name == gossip.server:
                self._child_loads[gossip.server] = ChildLoad(
                    client_count=gossip.client_count,
                    has_children=gossip.has_children,
                    born_at=child.born_at,
                    reported_at=gossip.timestamp,
                )
                return

    # ------------------------------------------------------------------
    # Split orchestration
    # ------------------------------------------------------------------
    def _begin_split(self) -> None:
        self._busy = True
        self._policy.note_split(self.sim.now)
        self._fabric.acquire_host(self._on_host_acquired)

    def _on_host_acquired(self, host_id: str | None) -> None:
        if self._dying:
            self._busy = False
            return
        if host_id is None:
            # Pool exhausted: Matrix degrades to static behaviour here.
            self.failed_splits += 1
            self._busy = False
            return
        positions = self._fabric.client_positions(self._game_server)
        kept, given = self._strategy.split(self._partition, positions)
        self._pending_kept = kept
        self._pending_given = given
        self._pending_host = host_id
        self._fabric.spawn_pair(host_id, given, self.name, self._on_child_ready)

    def _on_child_ready(self, child_ms: str, child_gs: str) -> None:
        if self._pending_given is None:  # defensive: cancelled split
            return
        self._pending_child = (child_ms, child_gs)
        grant = SplitGrant(
            parent=self.name,
            child_partition=self._pending_given,
            parent_partition=self._pending_kept,
        )
        self.send(
            child_ms,
            "matrix.ctl.split_grant",
            grant,
            size_bytes=self._config.wire.control_bytes,
        )
        self._start_state_transfer(child_ms, self._pending_given, context="split")

    def _start_state_transfer(self, peer: str, area_rect: Rect, context: str) -> None:
        """Send the dynamic map state for *area_rect* to *peer* (§3.2.2:
        map objects are forwarded via Matrix; static assets like
        textures are pre-cached and only pointers travel)."""
        wire = self._config.wire
        object_count = max(
            1, int(area_rect.area * self._config.map_object_density)
        )
        total_bytes = object_count * wire.state_object_bytes
        total_chunks = max(1, -(-total_bytes // wire.state_chunk_bytes))
        transfer_id = next(self._transfer_ids)
        self._outgoing[transfer_id] = context
        begin = StateBegin(
            transfer_id=transfer_id,
            total_chunks=total_chunks,
            total_bytes=total_bytes,
            context=context,
        )
        self.send(
            peer, "matrix.state.begin", begin, size_bytes=wire.control_bytes
        )
        remaining = total_bytes
        for index in range(total_chunks):
            chunk_bytes = min(wire.state_chunk_bytes, remaining)
            remaining -= chunk_bytes
            self.send(
                peer,
                "matrix.state.chunk",
                StateChunk(transfer_id=transfer_id, index=index),
                size_bytes=chunk_bytes,
            )

    def _on_state_begin(self, src: str, begin: StateBegin) -> None:
        # Chunks and the begin travel independently and may reorder, so
        # a transfer record may already exist with buffered chunks.
        transfer = self._incoming.get(begin.transfer_id)
        if transfer is None:
            transfer = _IncomingTransfer(
                sender=src, total_chunks=0, received=0, context=""
            )
            self._incoming[begin.transfer_id] = transfer
        transfer.sender = src
        transfer.total_chunks = begin.total_chunks
        transfer.context = begin.context
        self._maybe_complete_transfer(begin.transfer_id)

    def _on_state_chunk(self, src: str, chunk: StateChunk) -> None:
        transfer = self._incoming.get(chunk.transfer_id)
        if transfer is None:
            # Chunk overtook its StateBegin: buffer the count.
            transfer = _IncomingTransfer(
                sender=src, total_chunks=0, received=0, context=""
            )
            self._incoming[chunk.transfer_id] = transfer
        transfer.received += 1
        self._maybe_complete_transfer(chunk.transfer_id)

    def _maybe_complete_transfer(self, transfer_id: int) -> None:
        transfer = self._incoming.get(transfer_id)
        if transfer is None or transfer.total_chunks <= 0:
            return
        if transfer.received < transfer.total_chunks:
            return
        del self._incoming[transfer_id]
        self.send(
            transfer.sender,
            "matrix.state.done",
            StateDone(transfer_id=transfer_id),
            size_bytes=self._config.wire.control_bytes,
        )

    def _on_state_done(self, done: StateDone) -> None:
        context = self._outgoing.pop(done.transfer_id, None)
        if context == "split":
            self._finalize_split()
        elif context == "reclaim":
            self._finalize_reclaim_child()

    def _finalize_split(self) -> None:
        child_ms, child_gs = self._pending_child
        self._partition = self._pending_kept
        self._children.append(
            ChildRecord(
                matrix_name=child_ms,
                game_server=child_gs,
                host_id=self._pending_host,
                born_at=self.sim.now,
            )
        )
        notice = SplitNotice(
            parent=self.name,
            parent_partition=self._pending_kept,
            child=child_ms,
            child_game_server=child_gs,
            child_partition=self._pending_given,
            visibility_radius=self._config.visibility_radius,
        )
        self.send(
            self._coordinator,
            "mc.split",
            notice,
            size_bytes=self._config.wire.control_bytes,
        )
        self._pending_kept = None
        self._pending_given = None
        self._pending_host = None
        self._pending_child = None
        self.splits_completed += 1
        self._busy = False

    def _on_split_grant(self, grant: SplitGrant) -> None:
        # The child was constructed with its partition already; the
        # grant confirms the parent relationship for the protocol's sake.
        self._parent = grant.parent

    # ------------------------------------------------------------------
    # Reclaim orchestration
    # ------------------------------------------------------------------
    def _begin_reclaim(self) -> None:
        child = self._children[-1]
        self._busy = True
        self._reclaiming = child
        self._policy.note_reclaim(self.sim.now)
        request = ReclaimRequest(
            parent=self.name, parent_game_server=self._game_server
        )
        self.send(
            child.matrix_name,
            "matrix.ctl.reclaim_req",
            request,
            size_bytes=self._config.wire.control_bytes,
        )

    def _on_reclaim_request(self, src: str, request: ReclaimRequest) -> None:
        if self._busy or self._children:
            # Mid-split, or we have children of our own: refuse.
            self.send(
                src,
                "matrix.ctl.reclaim_nack",
                None,
                size_bytes=self._config.wire.control_bytes,
            )
            return
        self._busy = True
        self._dying = True
        # Evacuate our clients to the parent's game server, then send
        # the dynamic state back.
        self.send(
            self._game_server,
            "gs.evacuate",
            request.parent_game_server,
            size_bytes=self._config.wire.control_bytes,
        )
        self._start_state_transfer(request.parent, self._partition, "reclaim")

    def _finalize_reclaim_child(self) -> None:
        """Child side: state is back at the parent; announce and die."""
        ack = ReclaimAck(
            child=self.name,
            child_partition=self._partition,
            client_count=self._client_count,
        )
        self.send(
            self._parent,
            "matrix.ctl.reclaim_ack",
            ack,
            size_bytes=self._config.wire.control_bytes,
        )

    def _on_reclaim_nack(self) -> None:
        self._reclaiming = None
        self._busy = False

    def _on_reclaim_ack(self, ack: ReclaimAck) -> None:
        child = self._reclaiming
        if child is None or child.matrix_name != ack.child:
            return
        self._partition = self._partition.union_bounds(ack.child_partition)
        self._children = [
            c for c in self._children if c.matrix_name != ack.child
        ]
        self._child_loads.pop(ack.child, None)
        notice = ReclaimNotice(
            parent=self.name,
            merged_partition=self._partition,
            child=ack.child,
        )
        self.send(
            self._coordinator,
            "mc.reclaim",
            notice,
            size_bytes=self._config.wire.control_bytes,
        )
        self._fabric.decommission_pair(child.matrix_name, child.host_id)
        self._reclaiming = None
        self.reclaims_completed += 1
        self._busy = False

    # ------------------------------------------------------------------
    # Non-proximal queries (§3.2.4)
    # ------------------------------------------------------------------
    def _on_game_query(self, query: ConsistencyQuery) -> None:
        mc_id = next(self._query_ids)
        self._query_relay[mc_id] = query.request_id
        relayed = ConsistencyQuery(
            point=query.point, exclude=self.name, request_id=mc_id
        )
        self.send(
            self._coordinator,
            "mc.query",
            relayed,
            size_bytes=self._config.wire.control_bytes,
        )

    def _on_mc_reply(self, reply: ConsistencyReply) -> None:
        gs_request = self._query_relay.pop(reply.request_id, None)
        if gs_request is None:
            return
        game_servers = frozenset(
            self._server_map[ms] for ms in reply.servers if ms in self._server_map
        )
        out = ConsistencyReply(request_id=gs_request, servers=game_servers)
        self.send(
            self._game_server,
            "gs.query_reply",
            out,
            size_bytes=self._config.wire.control_bytes,
        )
