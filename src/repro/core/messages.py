"""Protocol payloads exchanged between Matrix components.

Message *kinds* (the strings used for traffic accounting) follow a
dotted scheme:

* ``game.spatial``      — game server → its Matrix server (tagged packet)
* ``matrix.forward``    — Matrix server → peer Matrix server
* ``matrix.deliver``    — Matrix server → its game server (remote packet)
* ``matrix.load``       — game server → its Matrix server (load report)
* ``matrix.gossip``     — child Matrix server → parent (load gossip)
* ``matrix.state.*``    — bulk state transfer during splits/reclaims
* ``matrix.ctl.*``      — split/reclaim control handshakes
* ``mc.*``              — anything to/from the Matrix Coordinator
* ``gs.*``              — Matrix server → game server directives
* ``fabric.*``          — Matrix server ↔ deployment fabric (sharded
  runs route host grants and pair spawns over these instead of calling
  the deployment object directly, keeping control state lane-local)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect, Vec2

# ----------------------------------------------------------------------
# Data plane
# ----------------------------------------------------------------------


@dataclass(slots=True)
class SpatialPacket:
    """A game packet tagged with the spatial coordinates of its origin
    (and optionally a distinct destination point, for projectiles etc.).

    Matrix never looks inside ``payload`` — the separation-of-concerns
    contract of §2.1.
    """

    origin: Vec2
    payload: object
    dest: Vec2 | None = None
    source_server: str = ""
    client_id: str = ""
    #: Exception visibility radius (§3.1): ``None`` means the game's
    #: default radius; a value selects the matching overlap table.
    radius: float | None = None
    created_at: float = 0.0

    def route_point(self) -> Vec2:
        """The point whose consistency set decides routing."""
        return self.origin


@dataclass(slots=True)
class LoadReport:
    """Periodic game-server load report (§3.2.2)."""

    client_count: int
    queue_length: int
    timestamp: float


@dataclass(slots=True)
class LoadGossip:
    """Child → parent load summary, used for reclaim decisions."""

    server: str
    client_count: int
    has_children: bool
    timestamp: float


# ----------------------------------------------------------------------
# Coordinator plane
# ----------------------------------------------------------------------


@dataclass(slots=True)
class RegisterServer:
    """Matrix server → MC: announce (or re-announce) a map range."""

    matrix_server: str
    game_server: str
    partition: Rect
    visibility_radius: float


@dataclass(slots=True)
class UnregisterServer:
    """Matrix server → MC: a reclaimed server leaves the game."""

    matrix_server: str


@dataclass(slots=True)
class OverlapTableUpdate:
    """MC → Matrix server: the new overlap tables plus the directory.

    ``tables`` maps each visibility radius (the game default plus any
    §3.1 exception radii) to the merged overlap cells of the receiving
    server's partition; ``partitions`` maps every Matrix server to its
    partition; ``game_servers`` maps every game server to its partition
    (the redirect directory forwarded to game servers).
    """

    version: int
    partition: Rect
    tables: dict  # radius -> list[OverlapCell]
    default_radius: float
    partitions: dict
    game_servers: dict
    server_map: dict  # matrix server name -> game server name


@dataclass(slots=True)
class SplitNotice:
    """Parent Matrix server → MC: atomic record of a completed split.

    Carried as one message so the MC never observes a transient state
    where parent and child partitions overlap.
    """

    parent: str
    parent_partition: Rect
    child: str
    child_game_server: str
    child_partition: Rect
    visibility_radius: float


@dataclass(slots=True)
class ReclaimNotice:
    """Parent Matrix server → MC: atomic record of a completed reclaim."""

    parent: str
    merged_partition: Rect
    child: str


@dataclass(slots=True)
class ConsistencyQuery:
    """Matrix server → MC: non-proximal interaction lookup (§3.2.4)."""

    point: Vec2
    exclude: str
    request_id: int


@dataclass(slots=True)
class ConsistencyReply:
    """MC → Matrix server: answer to a :class:`ConsistencyQuery`."""

    request_id: int
    servers: frozenset


# ----------------------------------------------------------------------
# Split / reclaim control plane
# ----------------------------------------------------------------------


@dataclass(slots=True)
class SplitGrant:
    """Parent Matrix server → child: here is your partition."""

    parent: str
    child_partition: Rect
    parent_partition: Rect


@dataclass(slots=True)
class StateBegin:
    """Start of a bulk state transfer."""

    transfer_id: int
    total_chunks: int
    total_bytes: int
    context: str  # "split" or "reclaim"


@dataclass(slots=True)
class StateChunk:
    """One chunk of bulk state."""

    transfer_id: int
    index: int


@dataclass(slots=True)
class StateDone:
    """Receiver → sender: all chunks arrived."""

    transfer_id: int


@dataclass(slots=True)
class ReclaimRequest:
    """Parent Matrix server → child: hand your partition back."""

    parent: str
    parent_game_server: str


@dataclass(slots=True)
class ReclaimAck:
    """Child → parent: partition and client handoff complete."""

    child: str
    child_partition: Rect
    client_count: int


# ----------------------------------------------------------------------
# Game-server directives
# ----------------------------------------------------------------------


@dataclass(slots=True)
class SetRange:
    """Matrix server → game server: new map range + redirect directory.

    The game server must redirect every client outside ``partition`` to
    the game server owning the client's position (looked up in
    ``directory``).
    """

    partition: Rect
    directory: dict = field(default_factory=dict)


@dataclass(slots=True)
class DeliverPacket:
    """Matrix server → game server: a packet from a peer's region."""

    packet: SpatialPacket


# ----------------------------------------------------------------------
# Fabric control plane (sharded deployments)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class FabricAcquire:
    """Matrix server → fabric: request one host from the pool."""

    requester: str


@dataclass(slots=True)
class FabricGrant:
    """Fabric → Matrix server: the pool's answer (None = exhausted)."""

    host_id: str | None


@dataclass(slots=True)
class FabricSpawn:
    """Matrix server → fabric: boot a child pair on a granted host."""

    host_id: str
    partition: Rect
    parent: str


@dataclass(slots=True)
class FabricSpawned:
    """Fabric → Matrix server: the child pair is up and bound."""

    child_ms: str
    child_gs: str


@dataclass(slots=True)
class FabricRelease:
    """Matrix server → fabric: return an unused host grant."""

    host_id: str


@dataclass(slots=True)
class FabricDecommission:
    """Matrix server → fabric: retire a reclaimed child pair.

    ``host_id=None`` frees whatever host the pair currently holds
    (cancelled-split cleanup — see ``MatrixDeployment.decommission_pair``).
    """

    matrix_name: str
    host_id: str | None
