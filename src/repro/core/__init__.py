"""Matrix middleware core: coordinator, servers, policy, deployment."""

from repro.core.api import GameServerHandle, MatrixPort
from repro.core.config import (
    LoadPolicyConfig,
    MatrixConfig,
    MiddlewareConfig,
    WireConfig,
)
from repro.core.coordinator import MatrixCoordinator, StandbyCoordinator
from repro.core.deployment import GameServerFactory, MatrixDeployment, ServerEvent
from repro.core.messages import (
    ConsistencyQuery,
    ConsistencyReply,
    DeliverPacket,
    LoadGossip,
    LoadReport,
    OverlapTableUpdate,
    ReclaimAck,
    ReclaimNotice,
    ReclaimRequest,
    RegisterServer,
    SetRange,
    SpatialPacket,
    SplitGrant,
    SplitNotice,
    StateBegin,
    StateChunk,
    StateDone,
    UnregisterServer,
)
from repro.core.policy import ChildLoad, Decision, LoadPolicy
from repro.core.pool import ServerPool
from repro.core.runtime import (
    ChildRecord,
    Fabric,
    MatrixServer,
    ServerContext,
    ServerStats,
    install_middleware,
)
from repro.core.splitting import (
    LoadWeighted,
    LongestAxis,
    SplitStrategy,
    SplitToLeft,
    strategy_by_name,
)

__all__ = [
    "ChildLoad",
    "ChildRecord",
    "ConsistencyQuery",
    "ConsistencyReply",
    "Decision",
    "DeliverPacket",
    "Fabric",
    "GameServerFactory",
    "GameServerHandle",
    "LoadGossip",
    "LoadPolicy",
    "LoadPolicyConfig",
    "LoadReport",
    "LoadWeighted",
    "LongestAxis",
    "MatrixConfig",
    "MatrixCoordinator",
    "MatrixDeployment",
    "MatrixPort",
    "MatrixServer",
    "MiddlewareConfig",
    "OverlapTableUpdate",
    "ReclaimAck",
    "ReclaimNotice",
    "ReclaimRequest",
    "RegisterServer",
    "ServerContext",
    "ServerEvent",
    "ServerPool",
    "ServerStats",
    "SetRange",
    "SpatialPacket",
    "SplitGrant",
    "SplitNotice",
    "SplitStrategy",
    "SplitToLeft",
    "StandbyCoordinator",
    "StateBegin",
    "StateChunk",
    "StateDone",
    "UnregisterServer",
    "WireConfig",
    "install_middleware",
]
