"""Split/reclaim decision logic with oscillation damping (§3.2.3).

The paper: "Matrix uses simple heuristics (not described) to prevent
oscillations and ensure stability in the splitting / reclamation
process."  The heuristics implemented here are the standard trio:

1. *persistence* — overload must be seen in k consecutive load reports
   before a split fires (filters one-report blips);
2. *cool-downs* — a server that just split (or reclaimed) waits before
   doing it again, so state transfers settle between decisions;
3. *reclaim margin* — a child is only reclaimed when the merged load
   would sit comfortably below the overload threshold
   (``reclaim_combined_factor``), so a reclaim cannot immediately
   trigger a re-split.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.config import LoadPolicyConfig


class Decision(Enum):
    """What the policy wants the Matrix server to do right now."""

    NONE = "none"
    SPLIT = "split"
    RECLAIM = "reclaim"


@dataclass(slots=True)
class ChildLoad:
    """Last known load of one child server (from gossip)."""

    client_count: int
    has_children: bool
    born_at: float
    reported_at: float


class LoadPolicy:
    """Per-Matrix-server split/reclaim decision state machine."""

    def __init__(self, config: LoadPolicyConfig) -> None:
        self._config = config
        self._consecutive_overloads = 0
        self._consecutive_underloads = 0
        self._last_split_at = float("-inf")
        self._last_reclaim_at = float("-inf")
        self._last_failed_split_at = float("-inf")
        self._last_failed_reclaim_at = float("-inf")
        # Pre-attempt cooldown stamps, restored if the attempt fails
        # (a pool-exhausted split or a nacked reclaim must not consume
        # the success cooldown — it gets the failed-attempt backoff).
        self._split_stamp_before_attempt: float | None = None
        self._reclaim_stamp_before_attempt: float | None = None
        self._splits = 0
        self._reclaims = 0
        self._failed_splits = 0
        self._failed_reclaims = 0

    @property
    def config(self) -> LoadPolicyConfig:
        """The thresholds this policy runs with."""
        return self._config

    @property
    def split_count(self) -> int:
        """Splits that actually completed (failed attempts excluded)."""
        return self._splits

    @property
    def reclaim_count(self) -> int:
        """Reclaims that actually completed (nacked attempts excluded)."""
        return self._reclaims

    @property
    def failed_split_count(self) -> int:
        """Split attempts that failed (pool exhausted, aborted)."""
        return self._failed_splits

    @property
    def failed_reclaim_count(self) -> int:
        """Reclaim attempts that failed (nacked, timed out)."""
        return self._failed_reclaims

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    def is_overloaded(self, client_count: int) -> bool:
        """Paper Fig 2: 'a server is overloaded when it has 300+ clients'."""
        return client_count >= self._config.overload_clients

    def is_underloaded(self, client_count: int) -> bool:
        """Paper Fig 2: underloaded below 150 clients."""
        return client_count < self._config.underload_clients

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def on_load_report(
        self,
        now: float,
        client_count: int,
        youngest_child: ChildLoad | None,
        busy: bool,
    ) -> Decision:
        """Evaluate one load report and return the action to take.

        *youngest_child* is the most recently spawned, still-live child
        (reclamation is LIFO so partitions merge back into rectangles);
        *busy* is True while a split/reclaim is already in flight, which
        suppresses new decisions entirely.
        """
        config = self._config

        if self.is_overloaded(client_count):
            self._consecutive_overloads += 1
        else:
            self._consecutive_overloads = 0

        reclaim_viable = (
            youngest_child is not None
            and not youngest_child.has_children
            and self.is_underloaded(client_count)
            and self.is_underloaded(youngest_child.client_count)
            and client_count + youngest_child.client_count
            <= config.reclaim_combined_factor * config.overload_clients
        )
        if reclaim_viable:
            self._consecutive_underloads += 1
        else:
            self._consecutive_underloads = 0

        if busy:
            return Decision.NONE

        if (
            self._consecutive_overloads >= config.consecutive_overload_reports
            and now - self._last_split_at >= config.split_cooldown
            and now - self._last_failed_split_at
            >= config.effective_failed_split_backoff()
        ):
            return Decision.SPLIT

        if (
            reclaim_viable
            and self._consecutive_underloads
            >= config.consecutive_underload_reports
            and now - youngest_child.born_at >= config.min_child_lifetime
            and now - self._last_reclaim_at >= config.reclaim_cooldown
            and now - self._last_failed_reclaim_at
            >= config.effective_failed_reclaim_backoff()
        ):
            return Decision.RECLAIM

        return Decision.NONE

    # ------------------------------------------------------------------
    # Feedback from the server
    # ------------------------------------------------------------------
    # The lifecycle reports each split/reclaim in two halves: an
    # *attempt* when it starts (stamps the cooldown, damps further
    # decisions while in flight) and a *success*/*failure* when the
    # outcome is known.  A failure restores the pre-attempt cooldown
    # stamp — a pool-exhausted split or a nacked reclaim must not
    # consume the success cooldown or inflate the counters — and starts
    # the distinct failed-attempt backoff instead.

    def note_split_attempt(self, now: float) -> None:
        """A split was initiated at *now* (outcome not yet known)."""
        self._split_stamp_before_attempt = self._last_split_at
        self._last_split_at = now
        self._consecutive_overloads = 0

    def note_split_success(self) -> None:
        """The in-flight split completed: count it, keep its cooldown."""
        self._splits += 1
        self._split_stamp_before_attempt = None

    def note_split_failure(self, now: float) -> None:
        """The in-flight split failed: restore the cooldown, back off."""
        if self._split_stamp_before_attempt is not None:
            self._last_split_at = self._split_stamp_before_attempt
            self._split_stamp_before_attempt = None
        self._last_failed_split_at = now
        self._failed_splits += 1

    def note_reclaim_attempt(self, now: float) -> None:
        """A reclaim was initiated at *now* (outcome not yet known)."""
        self._reclaim_stamp_before_attempt = self._last_reclaim_at
        self._last_reclaim_at = now
        self._consecutive_underloads = 0

    def note_reclaim_success(self) -> None:
        """The in-flight reclaim was acked: count it, keep its cooldown."""
        self._reclaims += 1
        self._reclaim_stamp_before_attempt = None

    def note_reclaim_failure(self, now: float) -> None:
        """The in-flight reclaim was nacked/aborted: restore and back off."""
        if self._reclaim_stamp_before_attempt is not None:
            self._last_reclaim_at = self._reclaim_stamp_before_attempt
            self._reclaim_stamp_before_attempt = None
        self._last_failed_reclaim_at = now
        self._failed_reclaims += 1

    def note_split(self, now: float) -> None:
        """Record an immediately successful split (attempt + success)."""
        self.note_split_attempt(now)
        self.note_split_success()

    def note_reclaim(self, now: float) -> None:
        """Record an immediately successful reclaim (attempt + success)."""
        self.note_reclaim_attempt(now)
        self.note_reclaim_success()
