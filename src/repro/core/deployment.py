"""Deployment fabric: wires Matrix servers, game servers, MC and pool.

A :class:`MatrixDeployment` owns the runtime inventory of a Matrix-
hosted game: it bootstraps the first Matrix+game server pair over the
whole world, implements the :class:`~repro.core.runtime.fabric.Fabric`
services (host acquisition, pair spawning, decommissioning), applies
network profiles (LAN between servers, WAN to clients, loopback within
a co-located pair), installs the configured middleware pipeline on
every Matrix server it creates, and records a spawn/decommission event
log the experiment harness turns into Fig 2's annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.api import GameServerHandle
from repro.core.config import MatrixConfig
from repro.core.coordinator import MatrixCoordinator, StandbyCoordinator
from repro.core.pool import ServerPool
from repro.core.runtime import MatrixServer, install_middleware
from repro.geometry import Rect, Vec2
from repro.net.network import Network, lan_profile, wan_profile
from repro.net.node import Node
from repro.sim.kernel import Simulator

#: Creates a game-server node for the given name and initial map range.
#: The returned object must be a :class:`~repro.net.node.Node` that also
#: satisfies :class:`~repro.core.api.GameServerHandle`.
GameServerFactory = Callable[[str, Rect], Node]


@dataclass(slots=True)
class ServerEvent:
    """One entry of the deployment's lifecycle log."""

    time: float
    kind: str  # "spawn" | "decommission" | "crash"
    matrix_server: str
    game_server: str


@dataclass(slots=True)
class CrashRecovery:
    """Audit trail of one crashed pair's supervised recovery."""

    victim: str
    crashed_at: float
    detected_at: float
    #: When the replacement pair registered its partition (None while
    #: the respawn is still pending, e.g. the pool was empty).
    restored_at: float | None = None
    replacement: str | None = None

    @property
    def recovery_time(self) -> float | None:
        """Crash-to-reregistration latency (None = not yet recovered)."""
        if self.restored_at is None:
            return None
        return self.restored_at - self.crashed_at


class MatrixDeployment:
    """Runtime inventory + fabric services for one Matrix-hosted game."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: MatrixConfig,
        game_server_factory: GameServerFactory,
        pool: ServerPool | None = None,
        pool_capacity: int = 16,
        replicated_mc: bool = False,
        mc_failover_timeout: float = 3.0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self._factory = game_server_factory
        self.pool = pool or ServerPool(
            sim, capacity=pool_capacity, acquire_delay=config.pool_acquire_delay
        )
        self.coordinator = MatrixCoordinator(config)
        network.add_node(self.coordinator)
        self._coordinator_name = self.coordinator.name
        self.standby_coordinator: StandbyCoordinator | None = None
        if replicated_mc:
            self.standby_coordinator = StandbyCoordinator(
                config, failover_timeout=mc_failover_timeout
            )
            network.add_node(self.standby_coordinator)
            network.set_prefix_profile("mc", "mc", lan_profile())
            self.coordinator.start_replication(self.standby_coordinator.name)
            self.standby_coordinator.start_monitoring()
            self.standby_coordinator.on_promote = self._on_mc_promoted
        self.matrix_servers: dict[str, MatrixServer] = {}
        self.game_servers: dict[str, GameServerHandle] = {}
        self.events: list[ServerEvent] = []
        self._pair_counter = 0
        # --- crash supervision (armed by the chaos driver) -----------
        #: Hooks run on every freshly created pair (chaos uses this to
        #: keep fault-injection stages installed on late spawns).
        self.pair_created_hooks: list[Callable[[MatrixServer], None]] = []
        #: Hook run when a crashed pair's replacement re-registers.
        self.on_recovery: Callable[[CrashRecovery], None] | None = None
        #: Hook run when the standby MC promotes itself.
        self.on_failover: Callable[[StandbyCoordinator], None] | None = None
        self.crash_recoveries: list[CrashRecovery] = []
        self._supervisor_task = None
        self._host_reboot_delay = 2.0
        #: Corpses awaiting autopsy, with announced-ness decided at
        #: crash time (the MC map is unreliable mid-failover).
        self._corpses: list[tuple[MatrixServer, bool]] = []
        #: Every corpse ever, by name — a child crashing after its
        #: parent still needs the parent's in-flight-split state.
        self._crashed_index: dict[str, MatrixServer] = {}
        #: Respawns blocked on an exhausted pool, retried per sweep.
        self._respawn_queue: list[tuple[MatrixServer, CrashRecovery]] = []
        self._pending_spawns: dict[str, list] = {}
        self._pending_releases: set[str] = set()
        self._install_profiles()

    def fail_coordinator(self) -> None:
        """Crash the primary MC (fault-injection hook for tests/benches).

        With ``replicated_mc`` the standby notices the missing sync
        heartbeats and promotes itself; without it, the deployment can
        no longer repartition (but the data path keeps working — the
        MC is not on it).
        """
        self.coordinator.shutdown()
        self.network.remove_node(self.coordinator.name)

    def _on_mc_promoted(self, standby: StandbyCoordinator) -> None:
        """The standby took over: re-point the fabric at it.

        Future spawns (split children, crash replacements) register
        with the new MC, and — since the standby only notifies the
        servers its last sync knew — the fabric sweeps every *live*
        server onto the new coordinator too.  Servers the wire-level
        failover also reaches ignore the duplicate (the handler is
        idempotent); servers the standby never heard of (crash
        replacements registered while the primary was already dead)
        are exactly the ones this sweep saves.
        """
        self._coordinator_name = standby.name
        for server in list(self.matrix_servers.values()):
            server.follow_coordinator(standby.name)
        if self.on_failover is not None:
            self.on_failover(standby)

    def _install_profiles(self) -> None:
        net = self.network
        net.set_prefix_profile("ms.", "ms.", lan_profile())
        net.set_prefix_profile("ms.", "mc", lan_profile())
        net.set_prefix_profile("mc", "ms.", lan_profile())
        net.set_prefix_profile("client.", "gs.", wan_profile())
        net.set_prefix_profile("gs.", "client.", wan_profile())
        net.set_prefix_profile("gs.", "gs.", lan_profile())

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self) -> tuple[MatrixServer, GameServerHandle]:
        """Create the initial pair owning the entire world (server 1)."""
        ms, gs = self._create_pair(self.config.world, parent=None, host_id="host-0")
        ms.register_with_coordinator()
        return ms, gs

    def bootstrap_grid(
        self, columns: int, rows: int
    ) -> list[tuple[MatrixServer, GameServerHandle]]:
        """Create a pre-partitioned grid of pairs (microbenchmarks).

        Production Matrix always starts from one server and splits on
        demand; the grid bootstrap exists so microbenchmarks can study
        a fixed multi-server layout without first manufacturing load.
        """
        from repro.geometry import tile_world

        pairs = []
        for index, tile in enumerate(tile_world(self.config.world, columns, rows)):
            ms, gs = self._create_pair(
                tile, parent=None, host_id=f"host-grid-{index}"
            )
            ms.register_with_coordinator()
            pairs.append((ms, gs))
        return pairs

    def _create_pair(
        self, partition: Rect, parent: str | None, host_id: str
    ) -> tuple[MatrixServer, GameServerHandle]:
        self._pair_counter += 1
        n = self._pair_counter
        ms_name = f"ms.{n}"
        gs_name = f"gs.{n}"
        game_server = self._factory(gs_name, partition)
        self.network.add_node(game_server)
        matrix_server = MatrixServer(
            name=ms_name,
            game_server=gs_name,
            config=self.config,
            fabric=self._fabric_for(ms_name),
            partition=partition,
            parent=parent,
            host_id=host_id,
            coordinator=self._coordinator_name,
        )
        self.network.add_node(matrix_server)
        install_middleware(matrix_server, self.config)
        self.network.set_colocated(ms_name, gs_name)
        game_server.bind_matrix(ms_name, partition)
        self.matrix_servers[ms_name] = matrix_server
        self.game_servers[gs_name] = game_server
        self.events.append(
            ServerEvent(self.sim.now, "spawn", ms_name, gs_name)
        )
        for hook in self.pair_created_hooks:
            hook(matrix_server)
        return matrix_server, game_server

    def _fabric_for(self, ms_name: str):
        """The :class:`~repro.core.runtime.fabric.Fabric` a new server
        talks to.  The classic deployment hands out itself (direct
        calls); the sharded deployment overrides this with a per-server
        message-passing proxy so fabric requests cross lanes as
        ordinary network traffic."""
        return self

    # ------------------------------------------------------------------
    # Fabric services (called by Matrix servers)
    # ------------------------------------------------------------------
    def acquire_host(self, callback: Callable[[str | None], None]) -> None:
        """Delegate to the server pool (the 'non-Matrix external entity')."""
        self.pool.try_acquire(callback)

    def release_host(self, host_id: str) -> None:
        """Return an acquired-but-unused host (cancelled-split paths)."""
        self.pool.release(host_id)

    def spawn_pair(
        self,
        host_id: str,
        partition: Rect,
        parent: str,
        callback: Callable[[str, str], None],
    ) -> None:
        """Boot a new Matrix+game server pair after the spawn delay.

        The boot event is tracked per parent so that a parent crashing
        mid-split takes its half-born child down with it instead of
        leaving a zombie callback into the dead server.
        """

        def create() -> None:
            pending = self._pending_spawns.get(parent)
            if pending is not None and event in pending:
                pending.remove(event)
            ms, gs = self._create_pair(partition, parent=parent, host_id=host_id)
            callback(ms.name, gs.name)

        event = self.sim.after(self.config.server_spawn_delay, create)
        self._pending_spawns.setdefault(parent, []).append(event)

    def decommission_pair(
        self, matrix_name: str, host_id: str | None
    ) -> None:
        """Remove a reclaimed pair and return its host to the pool.

        A short grace period lets straggler in-flight messages drain
        into the void instead of a dead handler.  ``host_id=None``
        frees the host the pair was spawned on (cancelled-split
        cleanup, which may not hold the original id any more).
        """
        matrix_server = self.matrix_servers.get(matrix_name)
        if matrix_server is None:
            return
        if host_id is None:
            host_id = matrix_server.host_id
        gs_name = matrix_server.game_server
        self._pending_releases.add(host_id)

        def remove() -> None:
            self.network.remove_node(matrix_name)
            self.network.remove_node(gs_name)
            self.matrix_servers.pop(matrix_name, None)
            game_server = self.game_servers.pop(gs_name, None)
            # Normally already stopped by the evacuation; cancelled
            # splits tear down a pair that never evacuated.  Test
            # doubles without periodic duties have no shutdown.
            stop = getattr(game_server, "shutdown", None)
            if stop is not None:
                stop()
            self._pending_releases.discard(host_id)
            self.pool.release(host_id)

        self.events.append(
            ServerEvent(self.sim.now, "decommission", matrix_name, gs_name)
        )
        self.sim.after(0.25, remove)

    def client_positions(self, game_server: str):
        """Split-time read of a game server's client positions."""
        handle = self.game_servers.get(game_server)
        if handle is None:
            return []
        return handle.client_positions()

    # ------------------------------------------------------------------
    # Crash injection and supervised recovery (chaos layer)
    # ------------------------------------------------------------------
    def crash_pair(self, matrix_name: str) -> bool:
        """Kill a Matrix+game server pair abruptly (no cleanup runs).

        Unlike :meth:`decommission_pair` nothing is handed off: clients
        are orphaned, in-flight protocol exchanges hang, and the pair's
        pool lease dangles until the host supervisor (see
        :meth:`enable_crash_recovery`) autopsies the corpse.  Returns
        False when *matrix_name* is not a live server.
        """
        matrix_server = self.matrix_servers.pop(matrix_name, None)
        if matrix_server is None:
            return False
        gs_name = matrix_server.game_server
        game_server = self.game_servers.pop(gs_name, None)
        # The host died: everything scheduled on it dies with it —
        # periodic duties, queued-but-unserviced messages, and the
        # boot of any child pair this server was spawning.
        stop = getattr(game_server, "shutdown", None)
        if stop is not None:
            stop()
        matrix_server.inbox.halt()
        matrix_server.lifecycle.halt()
        if game_server is not None:
            game_server.inbox.halt()
        for event in self._pending_spawns.pop(matrix_name, []):
            self.sim.cancel(event)
        self.network.remove_node(matrix_name)
        self.network.remove_node(gs_name)
        self.events.append(
            ServerEvent(self.sim.now, "crash", matrix_name, gs_name)
        )
        self._crashed_index[matrix_name] = matrix_server
        self._corpses.append(
            (matrix_server, self._was_announced(matrix_server))
        )
        return True

    def enable_crash_recovery(
        self,
        check_interval: float = 0.5,
        host_reboot_delay: float = 2.0,
    ) -> None:
        """Arm the host supervisor (the pool's 'non-Matrix entity').

        Every *check_interval* seconds it sweeps for crashed pairs and,
        for each one found: reclaims the leases the dead server held
        (its own host after *host_reboot_delay*, plus any half-finished
        split's host or unannounced child pair), then acquires a fresh
        host and respawns a replacement over the dead partition, which
        unregisters the victim and re-registers with the current MC.
        Never armed by default — plain runs have no crashes to detect
        and must stay event-for-event identical.
        """
        self._host_reboot_delay = host_reboot_delay
        if self._supervisor_task is None:
            self._supervisor_task = self.sim.every(
                check_interval, self._supervise
            )

    def _supervise(self) -> None:
        # Respawns waiting out an exhausted pool retry first (their
        # lease reclamation already ran at detection time).
        retries, self._respawn_queue = self._respawn_queue, []
        for corpse, record in retries:
            self.pool.try_acquire(
                lambda host_id, c=corpse, r=record: self._respawn(
                    c, r, host_id
                )
            )
        corpses, self._corpses = self._corpses, []
        for corpse, announced in corpses:
            self._recover(corpse, announced, detected_at=self.sim.now)

    def _was_announced(self, corpse: MatrixServer) -> bool:
        """Did the MC ever learn this server owned its partition?

        A child spawned by an in-flight split is announced only when
        the parent's ``mc.split`` fires after the state transfer; a
        child that crashes before that owns nothing — respawning it
        would double-cover the parent's still-unshrunk partition.
        Decided from the parent's lifecycle state (live or itself a
        corpse) rather than the MC map, which is empty mid-failover
        while the promoted standby rebuilds from re-registrations.
        """
        parent_name = corpse.ctx.parent
        if parent_name is None:
            return True  # roots register at bootstrap
        parent = self.matrix_servers.get(
            parent_name
        ) or self._crashed_index.get(parent_name)
        if parent is not None:
            pending = parent.lifecycle.in_flight_child
            if pending is not None and pending[0] == corpse.name:
                return False  # mid-split child, never announced
        return True

    def _recover(
        self, corpse: MatrixServer, announced: bool, detected_at: float
    ) -> None:
        # Reclaim the leases the dead server held.
        lifecycle = corpse.lifecycle
        pending_child = lifecycle.in_flight_child
        pending_host = lifecycle.in_flight_host
        if pending_child is not None and pending_child[0] in self.matrix_servers:
            # Spawned but never announced to the MC: a pure orphan.
            self.decommission_pair(pending_child[0], pending_host)
        elif pending_host is not None:
            self.pool.release(pending_host)
        own_host = corpse.host_id
        if own_host in self.pool.issued:
            self._pending_releases.add(own_host)

            def reboot(host_id: str = own_host) -> None:
                self._pending_releases.discard(host_id)
                self.pool.release(host_id)

            self.sim.after(self._host_reboot_delay, reboot)
        if not announced:
            # The corpse owned no announced partition; its parent's
            # split watchdog aborts and keeps the whole range, so a
            # respawn here would double-cover it.  Leases are already
            # reclaimed above — nothing to restore.
            return
        crashed_at = next(
            event.time
            for event in reversed(self.events)
            if event.kind == "crash" and event.matrix_server == corpse.name
        )
        record = CrashRecovery(
            victim=corpse.name,
            crashed_at=crashed_at,
            detected_at=detected_at,
        )
        self.crash_recoveries.append(record)
        # Respawn a replacement over the dead partition.
        self.pool.try_acquire(
            lambda host_id: self._respawn(corpse, record, host_id)
        )

    def _respawn(
        self,
        corpse: MatrixServer,
        record: CrashRecovery,
        host_id: str | None,
    ) -> None:
        if host_id is None:
            # Pool empty right now: retry the respawn on a later sweep
            # (reclamation already ran; the record stays unrecovered
            # until a host frees up).
            self._respawn_queue.append((corpse, record))
            return

        def boot() -> None:
            ctx = corpse.ctx
            replacement, _ = self._create_pair(
                ctx.partition, parent=ctx.parent, host_id=host_id
            )
            # Adopt the dead server's children so reclaims keep working.
            for child in ctx.children:
                replacement.ctx.children.append(child)
                live_child = self.matrix_servers.get(child.matrix_name)
                if live_child is not None:
                    live_child.ctx.parent = replacement.name
            replacement.ctx.child_loads.update(ctx.child_loads)
            # And fix the victim's own parent's bookkeeping.
            parent = (
                self.matrix_servers.get(ctx.parent) if ctx.parent else None
            )
            if parent is not None:
                for sibling in parent.ctx.children:
                    if sibling.matrix_name == corpse.name:
                        sibling.matrix_name = replacement.name
                        sibling.game_server = replacement.game_server
                        sibling.host_id = host_id
            # Re-register the partition with whichever MC is current.
            from repro.core.messages import UnregisterServer

            replacement.ctx.control_send(
                self._coordinator_name,
                "mc.unregister",
                UnregisterServer(matrix_server=corpse.name),
            )
            replacement.register_with_coordinator()
            record.restored_at = self.sim.now
            record.replacement = replacement.name
            if self.on_recovery is not None:
                self.on_recovery(record)

        self.sim.after(self.config.server_spawn_delay, boot)

    def unaccounted_hosts(self) -> list[str]:
        """Issued pool hosts no live owner can explain (leak audit).

        Accounted-for hosts: those of live pairs, those held by a
        still-in-flight split, and those in a release grace window
        (decommission drain, crashed-host reboot).  Anything else
        leaked.  Run this after the simulation has settled — mid-flight
        it reports transient holds, not leaks.
        """
        held: set[str] = set(self._pending_releases)
        held |= self.pool.provisioning
        for server in self.matrix_servers.values():
            held.add(server.host_id)
            in_flight = server.lifecycle.in_flight_host
            if in_flight is not None:
                held.add(in_flight)
        return sorted(self.pool.issued - held)

    # ------------------------------------------------------------------
    # Lobby / directory services (used by workload generators)
    # ------------------------------------------------------------------
    def locate_game_server(self, point: Vec2) -> str:
        """Game server whose partition contains *point* (login path).

        During a reclaim there is a brief window where the dying child's
        region is not yet covered by the parent's merged partition; the
        lobby then answers with the nearest live partition, which is the
        parent in that window.
        """
        best_name: str | None = None
        best_distance = float("inf")
        for matrix_server in self.matrix_servers.values():
            if matrix_server.dying:
                continue
            if matrix_server.partition.contains(point):
                return matrix_server.game_server
            distance = matrix_server.partition.distance_to_point(point)
            if distance < best_distance:
                best_distance = distance
                best_name = matrix_server.game_server
        if best_name is None:
            raise LookupError(f"no live partition near {point}")
        return best_name

    def live_server_names(self) -> list[str]:
        """Names of Matrix servers that are alive and not being reclaimed."""
        return [
            name
            for name, server in self.matrix_servers.items()
            if not server.dying
        ]

    def total_clients(self) -> int:
        """Clients across all live game servers (from handles)."""
        return sum(
            handle.client_count for handle in self.game_servers.values()
        )
