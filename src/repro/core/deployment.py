"""Deployment fabric: wires Matrix servers, game servers, MC and pool.

A :class:`MatrixDeployment` owns the runtime inventory of a Matrix-
hosted game: it bootstraps the first Matrix+game server pair over the
whole world, implements the :class:`~repro.core.runtime.fabric.Fabric`
services (host acquisition, pair spawning, decommissioning), applies
network profiles (LAN between servers, WAN to clients, loopback within
a co-located pair), installs the configured middleware pipeline on
every Matrix server it creates, and records a spawn/decommission event
log the experiment harness turns into Fig 2's annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.api import GameServerHandle
from repro.core.config import MatrixConfig
from repro.core.coordinator import MatrixCoordinator, StandbyCoordinator
from repro.core.pool import ServerPool
from repro.core.runtime import MatrixServer, install_middleware
from repro.geometry import Rect, Vec2
from repro.net.network import Network, lan_profile, wan_profile
from repro.net.node import Node
from repro.sim.kernel import Simulator

#: Creates a game-server node for the given name and initial map range.
#: The returned object must be a :class:`~repro.net.node.Node` that also
#: satisfies :class:`~repro.core.api.GameServerHandle`.
GameServerFactory = Callable[[str, Rect], Node]


@dataclass(slots=True)
class ServerEvent:
    """One entry of the deployment's lifecycle log."""

    time: float
    kind: str  # "spawn" | "decommission"
    matrix_server: str
    game_server: str


class MatrixDeployment:
    """Runtime inventory + fabric services for one Matrix-hosted game."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: MatrixConfig,
        game_server_factory: GameServerFactory,
        pool: ServerPool | None = None,
        pool_capacity: int = 16,
        replicated_mc: bool = False,
        mc_failover_timeout: float = 3.0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self._factory = game_server_factory
        self.pool = pool or ServerPool(
            sim, capacity=pool_capacity, acquire_delay=config.pool_acquire_delay
        )
        self.coordinator = MatrixCoordinator(config)
        network.add_node(self.coordinator)
        self.standby_coordinator: StandbyCoordinator | None = None
        if replicated_mc:
            self.standby_coordinator = StandbyCoordinator(
                config, failover_timeout=mc_failover_timeout
            )
            network.add_node(self.standby_coordinator)
            network.set_prefix_profile("mc", "mc", lan_profile())
            self.coordinator.start_replication(self.standby_coordinator.name)
            self.standby_coordinator.start_monitoring()
        self.matrix_servers: dict[str, MatrixServer] = {}
        self.game_servers: dict[str, GameServerHandle] = {}
        self.events: list[ServerEvent] = []
        self._pair_counter = 0
        self._install_profiles()

    def fail_coordinator(self) -> None:
        """Crash the primary MC (fault-injection hook for tests/benches).

        With ``replicated_mc`` the standby notices the missing sync
        heartbeats and promotes itself; without it, the deployment can
        no longer repartition (but the data path keeps working — the
        MC is not on it).
        """
        self.coordinator.shutdown()
        self.network.remove_node(self.coordinator.name)

    def _install_profiles(self) -> None:
        net = self.network
        net.set_prefix_profile("ms.", "ms.", lan_profile())
        net.set_prefix_profile("ms.", "mc", lan_profile())
        net.set_prefix_profile("mc", "ms.", lan_profile())
        net.set_prefix_profile("client.", "gs.", wan_profile())
        net.set_prefix_profile("gs.", "client.", wan_profile())
        net.set_prefix_profile("gs.", "gs.", lan_profile())

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self) -> tuple[MatrixServer, GameServerHandle]:
        """Create the initial pair owning the entire world (server 1)."""
        ms, gs = self._create_pair(self.config.world, parent=None, host_id="host-0")
        ms.register_with_coordinator()
        return ms, gs

    def bootstrap_grid(
        self, columns: int, rows: int
    ) -> list[tuple[MatrixServer, GameServerHandle]]:
        """Create a pre-partitioned grid of pairs (microbenchmarks).

        Production Matrix always starts from one server and splits on
        demand; the grid bootstrap exists so microbenchmarks can study
        a fixed multi-server layout without first manufacturing load.
        """
        from repro.geometry import tile_world

        pairs = []
        for index, tile in enumerate(tile_world(self.config.world, columns, rows)):
            ms, gs = self._create_pair(
                tile, parent=None, host_id=f"host-grid-{index}"
            )
            ms.register_with_coordinator()
            pairs.append((ms, gs))
        return pairs

    def _create_pair(
        self, partition: Rect, parent: str | None, host_id: str
    ) -> tuple[MatrixServer, GameServerHandle]:
        self._pair_counter += 1
        n = self._pair_counter
        ms_name = f"ms.{n}"
        gs_name = f"gs.{n}"
        game_server = self._factory(gs_name, partition)
        self.network.add_node(game_server)
        matrix_server = MatrixServer(
            name=ms_name,
            game_server=gs_name,
            config=self.config,
            fabric=self,
            partition=partition,
            parent=parent,
            host_id=host_id,
        )
        self.network.add_node(matrix_server)
        install_middleware(matrix_server, self.config)
        self.network.set_colocated(ms_name, gs_name)
        game_server.bind_matrix(ms_name, partition)
        self.matrix_servers[ms_name] = matrix_server
        self.game_servers[gs_name] = game_server
        self.events.append(
            ServerEvent(self.sim.now, "spawn", ms_name, gs_name)
        )
        return matrix_server, game_server

    # ------------------------------------------------------------------
    # Fabric services (called by Matrix servers)
    # ------------------------------------------------------------------
    def acquire_host(self, callback: Callable[[str | None], None]) -> None:
        """Delegate to the server pool (the 'non-Matrix external entity')."""
        self.pool.try_acquire(callback)

    def spawn_pair(
        self,
        host_id: str,
        partition: Rect,
        parent: str,
        callback: Callable[[str, str], None],
    ) -> None:
        """Boot a new Matrix+game server pair after the spawn delay."""

        def create() -> None:
            ms, gs = self._create_pair(partition, parent=parent, host_id=host_id)
            callback(ms.name, gs.name)

        self.sim.after(self.config.server_spawn_delay, create)

    def decommission_pair(self, matrix_name: str, host_id: str) -> None:
        """Remove a reclaimed pair and return its host to the pool.

        A short grace period lets straggler in-flight messages drain
        into the void instead of a dead handler.
        """
        matrix_server = self.matrix_servers.get(matrix_name)
        if matrix_server is None:
            return
        gs_name = matrix_server.game_server

        def remove() -> None:
            self.network.remove_node(matrix_name)
            self.network.remove_node(gs_name)
            self.matrix_servers.pop(matrix_name, None)
            self.game_servers.pop(gs_name, None)
            self.pool.release(host_id)

        self.events.append(
            ServerEvent(self.sim.now, "decommission", matrix_name, gs_name)
        )
        self.sim.after(0.25, remove)

    def client_positions(self, game_server: str):
        """Split-time read of a game server's client positions."""
        handle = self.game_servers.get(game_server)
        if handle is None:
            return []
        return handle.client_positions()

    # ------------------------------------------------------------------
    # Lobby / directory services (used by workload generators)
    # ------------------------------------------------------------------
    def locate_game_server(self, point: Vec2) -> str:
        """Game server whose partition contains *point* (login path).

        During a reclaim there is a brief window where the dying child's
        region is not yet covered by the parent's merged partition; the
        lobby then answers with the nearest live partition, which is the
        parent in that window.
        """
        best_name: str | None = None
        best_distance = float("inf")
        for matrix_server in self.matrix_servers.values():
            if matrix_server.dying:
                continue
            if matrix_server.partition.contains(point):
                return matrix_server.game_server
            distance = matrix_server.partition.distance_to_point(point)
            if distance < best_distance:
                best_distance = distance
                best_name = matrix_server.game_server
        if best_name is None:
            raise LookupError(f"no live partition near {point}")
        return best_name

    def live_server_names(self) -> list[str]:
        """Names of Matrix servers that are alive and not being reclaimed."""
        return [
            name
            for name, server in self.matrix_servers.items()
            if not server.dying
        ]

    def total_clients(self) -> int:
        """Clients across all live game servers (from handles)."""
        return sum(
            handle.client_count for handle in self.game_servers.values()
        )
