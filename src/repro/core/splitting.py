"""Map-splitting strategies (§3.2.3).

The paper ships "a simple 'split-to-left' splitting technique where each
map is split into two equal pieces with the left piece handed off to the
new server", and §5 notes more optimal splitters exist [8, 14, 15].
This module implements the paper's strategy plus two of those
alternatives for the ablation bench:

* ``split-to-left``  — equal halves along x; left half leaves (paper).
* ``longest-axis``   — equal halves along the partition's longer axis,
  which keeps partitions square-ish and overlap perimeter small.
* ``load-weighted``  — split along the longest axis at the median of the
  current client positions, so each side inherits ~half the *load*
  rather than half the *area* (locality-aware, in the spirit of [8]).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.geometry import Rect, Vec2


class SplitStrategy(ABC):
    """Chooses how an overloaded partition is divided.

    :meth:`split` returns ``(kept, given)``: the sub-partition the
    overloaded server keeps and the one handed to the new server.
    """

    name: str = "abstract"

    @abstractmethod
    def split(
        self, partition: Rect, client_positions: Sequence[Vec2]
    ) -> tuple[Rect, Rect]:
        """Divide *partition*; *client_positions* may inform the cut."""


class SplitToLeft(SplitStrategy):
    """The paper's strategy: equal halves, left piece handed off."""

    name = "split-to-left"

    def split(
        self, partition: Rect, client_positions: Sequence[Vec2]
    ) -> tuple[Rect, Rect]:
        left, right = partition.halves("x")
        return right, left


class LongestAxis(SplitStrategy):
    """Equal halves along the longer axis; the lower/left piece leaves.

    Splitting the longer axis keeps aspect ratios bounded, which keeps
    the overlap-region perimeter (and hence consistency traffic) small.
    """

    name = "longest-axis"

    def split(
        self, partition: Rect, client_positions: Sequence[Vec2]
    ) -> tuple[Rect, Rect]:
        axis = "x" if partition.width >= partition.height else "y"
        low, high = partition.halves(axis)
        return high, low


class LoadWeighted(SplitStrategy):
    """Split at the client-position median along the longest axis.

    Keeps roughly half the *clients* on each side, so one split usually
    resolves an overload instead of a split cascade.  The cut is clamped
    away from the edges so neither piece degenerates.
    """

    name = "load-weighted"

    #: Keep the cut at least this fraction away from either edge.
    edge_margin = 0.1

    def split(
        self, partition: Rect, client_positions: Sequence[Vec2]
    ) -> tuple[Rect, Rect]:
        axis = "x" if partition.width >= partition.height else "y"
        if axis == "x":
            lo, hi = partition.xmin, partition.xmax
            coords = sorted(p.x for p in client_positions)
        else:
            lo, hi = partition.ymin, partition.ymax
            coords = sorted(p.y for p in client_positions)

        if coords:
            cut = coords[len(coords) // 2]
        else:
            cut = (lo + hi) / 2.0
        margin = (hi - lo) * self.edge_margin
        cut = min(max(cut, lo + margin), hi - margin)

        if axis == "x":
            low, high = partition.split_vertical(cut)
        else:
            low, high = partition.split_horizontal(cut)
        return high, low


STRATEGIES: dict[str, type[SplitStrategy]] = {
    SplitToLeft.name: SplitToLeft,
    LongestAxis.name: LongestAxis,
    LoadWeighted.name: LoadWeighted,
}


def strategy_by_name(name: str) -> SplitStrategy:
    """Instantiate a split strategy by its registry name."""
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown split strategy {name!r}; known: {sorted(STRATEGIES)}"
        ) from None
