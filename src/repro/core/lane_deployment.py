"""Shard-local deployment state over message-passing control lanes.

The classic :class:`~repro.core.deployment.MatrixDeployment` is a shared
mutable object: every Matrix server calls straight into it (and through
it into the one :class:`~repro.core.pool.ServerPool`) to acquire hosts,
boot split children and retire reclaimed pairs.  Under the sharded
engine those calls would mutate state owned by another lane mid-window.

This module keeps the *logic* of the deployment but moves its mutable
control state behind a message boundary:

* :class:`FabricNode` — a control-plane node (``"fabric"``) with no
  shard anchor, so the sharded network homes it on the **global lane**.
  It owns the pool, the spawn/decommission bookkeeping and the event
  log, and mutates them only from global-lane context.
* :class:`LaneFabric` — the per-server proxy satisfying the
  :class:`~repro.core.runtime.fabric.Fabric` protocol.  Each request
  becomes an ordinary ``fabric.*`` message riding the conservative-
  window outbox exchange in canonical ``(time, seq, shard)`` order, so
  grant ordering is message-arrival order — deterministic for any shard
  count and executor.
* :class:`ShardedMatrixDeployment` — the deployment subclass that wires
  the two up via ``_fabric_for``.

``client_positions`` stays a direct read: the queried game server is
co-located with the asking Matrix server on the *same* lane, so the
read never crosses a shard boundary.
"""

from __future__ import annotations

from repro.core.deployment import MatrixDeployment
from repro.core.messages import (
    FabricAcquire,
    FabricDecommission,
    FabricGrant,
    FabricRelease,
    FabricSpawn,
    FabricSpawned,
)
from repro.geometry import Rect
from repro.net.network import lan_profile
from repro.net.node import Node, handles


class LaneFabric:
    """Message-passing :class:`~repro.core.runtime.fabric.Fabric` proxy.

    One per Matrix server.  Requests are sent from the owning server's
    lane; replies come back as ``fabric.grant`` / ``fabric.spawned``
    messages the server routes to :meth:`deliver_grant` /
    :meth:`deliver_spawned`.  A single callback slot per request kind
    suffices: ``ServerContext.busy`` guarantees at most one split (and
    hence one acquire and one spawn) is in flight per server.
    """

    def __init__(self, deployment: "ShardedMatrixDeployment", ms_name: str) -> None:
        self._deployment = deployment
        self._ms_name = ms_name
        self._server = None  # resolved lazily: the node outlives us
        self._grant_callback = None
        self._spawn_callback = None

    def _send(self, kind: str, payload) -> None:
        server = self._server
        if server is None:
            server = self._server = self._deployment.matrix_servers[self._ms_name]
        server.send(
            FabricNode.NAME,
            kind,
            payload,
            size_bytes=self._deployment.config.wire.control_bytes,
        )

    # ------------------------------------------------------------------
    # Fabric protocol (called from the owning server's lane)
    # ------------------------------------------------------------------
    def acquire_host(self, callback) -> None:
        self._grant_callback = callback
        self._send("fabric.acquire", FabricAcquire(requester=self._ms_name))

    def release_host(self, host_id: str) -> None:
        self._send("fabric.release", FabricRelease(host_id=host_id))

    def spawn_pair(self, host_id: str, partition: Rect, parent: str, callback) -> None:
        self._spawn_callback = callback
        self._send(
            "fabric.spawn",
            FabricSpawn(host_id=host_id, partition=partition, parent=parent),
        )

    def decommission_pair(self, matrix_name: str, host_id: str | None) -> None:
        self._send(
            "fabric.decommission",
            FabricDecommission(matrix_name=matrix_name, host_id=host_id),
        )

    def client_positions(self, game_server: str):
        # Same-lane read: the game server is co-located with the asker.
        return self._deployment.client_positions(game_server)

    # ------------------------------------------------------------------
    # Reply dispatch (called by the server's fabric.* handlers)
    # ------------------------------------------------------------------
    def deliver_grant(self, grant: FabricGrant) -> None:
        callback, self._grant_callback = self._grant_callback, None
        if callback is not None:
            callback(grant.host_id)

    def deliver_spawned(self, spawned: FabricSpawned) -> None:
        callback, self._spawn_callback = self._spawn_callback, None
        if callback is not None:
            callback(spawned.child_ms, spawned.child_gs)


class FabricNode(Node):
    """The deployment's control plane as a global-lane network node.

    Carries **no** ``shard_anchor``, so ``ShardedNetwork.sim_for`` homes
    it on the global lane: every handler below runs in global context,
    where pool state, the pair registry and the event log may be
    mutated safely between lane windows.
    """

    NAME = "fabric"

    def __init__(self, deployment: "ShardedMatrixDeployment") -> None:
        super().__init__(self.NAME)
        self._deployment = deployment

    def _reply(self, dst: str, kind: str, payload) -> None:
        self.send(
            dst, kind, payload,
            size_bytes=self._deployment.config.wire.control_bytes,
        )

    @handles("fabric.acquire")
    def _on_acquire(self, message) -> None:
        requester = message.payload.requester

        def granted(host_id: str | None, requester=requester) -> None:
            self._reply(requester, "fabric.grant", FabricGrant(host_id=host_id))

        self._deployment.pool.try_acquire(granted)

    @handles("fabric.release")
    def _on_release(self, message) -> None:
        self._deployment.pool.release(message.payload.host_id)

    @handles("fabric.spawn")
    def _on_spawn(self, message) -> None:
        spawn = message.payload

        def booted(child_ms: str, child_gs: str, parent=spawn.parent) -> None:
            self._reply(
                parent,
                "fabric.spawned",
                FabricSpawned(child_ms=child_ms, child_gs=child_gs),
            )

        self._deployment.spawn_pair(
            spawn.host_id, spawn.partition, spawn.parent, booted
        )

    @handles("fabric.decommission")
    def _on_decommission(self, message) -> None:
        retire = message.payload
        self._deployment.decommission_pair(retire.matrix_name, retire.host_id)


class ShardedMatrixDeployment(MatrixDeployment):
    """Deployment whose control plane lives behind the fabric node."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fabric_node = FabricNode(self)
        self.network.add_node(self.fabric_node)
        # Matrix server <-> fabric control traffic is LAN-class, same
        # as server <-> MC.
        self.network.set_prefix_profile("ms.", FabricNode.NAME, lan_profile())
        self.network.set_prefix_profile(FabricNode.NAME, "ms.", lan_profile())

    def _fabric_for(self, ms_name: str) -> LaneFabric:
        return LaneFabric(self, ms_name)
