"""The Matrix Coordinator (MC) — §3.2.4.

The MC owns the authoritative map of ``Matrix server → partition`` and
recomputes every server's overlap table whenever the partitioning
changes (a server registers, splits, or is reclaimed).  Crucially it is
*not* on the data path: packet routing uses the tables it pushed, so MC
traffic stays a vanishing fraction of total traffic (microbenchmark
M-mc asserts this).  The MC also answers the rare non-proximal
consistency queries with the brute-force Equation-1 computation.
"""

from __future__ import annotations

from repro.core.config import MatrixConfig
from repro.core.messages import (
    ConsistencyQuery,
    ConsistencyReply,
    OverlapTableUpdate,
    ReclaimNotice,
    RegisterServer,
    SplitNotice,
    UnregisterServer,
)
from repro.geometry import (
    OverlapMapCache,
    PartitionIndex,
    Rect,
    consistency_set_at,
    metric_by_name,
)
from repro.net.message import Message
from repro.net.node import Node, handles


class MatrixCoordinator(Node):
    """The central coordinator node (name: ``mc``)."""

    def __init__(self, config: MatrixConfig, name: str = "mc") -> None:
        super().__init__(name, service_rate=float("inf"))
        self._config = config
        self._metric = metric_by_name(config.metric_name, world=config.world)
        self._partitions: dict[str, Rect] = {}
        self._game_server_of: dict[str, str] = {}
        self._radius = config.visibility_radius
        self._version = 0
        self._standby: str | None = None
        self._sync_task = None
        # Indexed point → owner lookup, rebuilt lazily whenever the
        # partitioning changes.
        self._owner_index: PartitionIndex | None = None
        # Incremental overlap-cell store: on a split/reclaim only the
        # partitions the changed rectangles can reach are re-decomposed
        # (created on first recompute, once a network/perf is known).
        self._overlap_cache: OverlapMapCache | None = None
        self.recompute_count = 0
        self.query_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> dict[str, Rect]:
        """Current Matrix-server → partition map (copy)."""
        return dict(self._partitions)

    @property
    def version(self) -> int:
        """Monotonic table version; bumps on every recompute."""
        return self._version

    @property
    def server_count(self) -> int:
        """Registered Matrix servers."""
        return len(self._partitions)

    def coverage_area(self) -> float:
        """Total area covered by registered partitions (should equal
        the world's area at all times — asserted by invariant tests)."""
        return sum(rect.area for rect in self._partitions.values())

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    @handles("mc.register")
    def _on_register(self, message: Message) -> None:
        reg: RegisterServer = message.payload
        self._partitions[reg.matrix_server] = reg.partition
        self._game_server_of[reg.matrix_server] = reg.game_server
        self._radius = reg.visibility_radius
        self._recompute_and_push()

    @handles("mc.split")
    def _on_split(self, message: Message) -> None:
        notice: SplitNotice = message.payload
        if notice.parent not in self._partitions:
            return  # stale notice from a server we no longer know
        self._partitions[notice.parent] = notice.parent_partition
        self._partitions[notice.child] = notice.child_partition
        self._game_server_of[notice.child] = notice.child_game_server
        self._radius = notice.visibility_radius
        self._recompute_and_push()

    @handles("mc.reclaim")
    def _on_reclaim(self, message: Message) -> None:
        notice: ReclaimNotice = message.payload
        if notice.parent not in self._partitions:
            return
        self._partitions.pop(notice.child, None)
        self._game_server_of.pop(notice.child, None)
        self._partitions[notice.parent] = notice.merged_partition
        self._recompute_and_push()

    @handles("mc.unregister")
    def _on_unregister(self, message: Message) -> None:
        unreg: UnregisterServer = message.payload
        self._partitions.pop(unreg.matrix_server, None)
        self._game_server_of.pop(unreg.matrix_server, None)
        self._recompute_and_push()

    def _owner_of(self, point) -> str | None:
        """Indexed owner lookup (rebuilt only when partitions changed)."""
        if self._owner_index is None:
            self._owner_index = PartitionIndex(self._partitions)
        return self._owner_index.lookup(point)

    @handles("mc.query")
    def _on_query(self, message: Message) -> None:
        query: ConsistencyQuery = message.payload
        src = message.src
        self.query_count += 1
        owner = self._owner_of(query.point)
        servers = consistency_set_at(
            query.point, owner, self._partitions, self._radius, self._metric
        )
        if owner is not None and query.exclude != owner:
            # For a non-proximal interaction the owner of the remote
            # point must also hear about it, not only its neighbours.
            servers = servers | {owner}
        servers = frozenset(s for s in servers if s != query.exclude)
        reply = ConsistencyReply(request_id=query.request_id, servers=servers)
        self.send(src, "mc.reply", reply, size_bytes=self._config.wire.control_bytes)

    # ------------------------------------------------------------------
    # Replication (§3.2.4: "The MC can also be made reliable using
    # well understood replication techniques.")
    # ------------------------------------------------------------------
    def start_replication(self, standby: str, interval: float = 1.0) -> None:
        """Mirror coordinator state to *standby* every *interval* s.

        The sync doubles as a heartbeat: the standby promotes itself
        when syncs stop arriving (see :class:`StandbyCoordinator`).
        """
        self._standby = standby
        self._sync_task = self.sim.every(
            interval, self._send_sync, start=self.sim.now
        )

    def shutdown(self) -> None:
        """Stop periodic duties (crash simulation / end of run)."""
        if self._sync_task is not None:
            self._sync_task.stop()
            self._sync_task = None

    def _send_sync(self) -> None:
        state = {
            "partitions": dict(self._partitions),
            "game_server_of": dict(self._game_server_of),
            "radius": self._radius,
            "version": self._version,
        }
        size = (
            len(self._partitions) * 2 * self._config.wire.directory_entry_bytes
            + self._config.wire.control_bytes
        )
        self.send(self._standby, "mc.sync", state, size_bytes=size)

    # ------------------------------------------------------------------
    # Table computation / distribution
    # ------------------------------------------------------------------
    def _recompute_and_push(self) -> None:
        """Recompute all overlap tables and push them to every server.

        §3.2.4: "The MC recomputes and redistributes overlap regions
        every time a new Matrix server is used or whenever an existing
        Matrix server is reclaimed."
        """
        self.recompute_count += 1
        self._version += 1
        self._owner_index = None  # partitioning changed: rebuild lazily
        directory = {
            self._game_server_of[ms]: rect
            for ms, rect in self._partitions.items()
        }
        server_map = dict(self._game_server_of)
        wire = self._config.wire
        # One distinct set of overlap regions per radius (§3.1): the
        # game default plus any registered exception radii.
        radii = {self._radius, *self._config.extra_radii}
        if self._overlap_cache is None:
            perf = self._network.perf if self._network is not None else None
            self._overlap_cache = OverlapMapCache(self._metric, perf=perf)
        all_tables = self._overlap_cache.compute(self._partitions, radii)
        for ms_name, partition in self._partitions.items():
            tables = all_tables[ms_name]
            update = OverlapTableUpdate(
                version=self._version,
                partition=partition,
                tables=tables,
                default_radius=self._radius,
                partitions=dict(self._partitions),
                game_servers=directory,
                server_map=server_map,
            )
            cell_count = sum(len(cells) for cells in tables.values())
            size = (
                cell_count * wire.table_cell_bytes
                + len(self._partitions) * 2 * wire.directory_entry_bytes
                + wire.control_bytes
            )
            self.send(ms_name, "mc.table", update, size_bytes=size)


class StandbyCoordinator(MatrixCoordinator):
    """A warm-standby MC replica.

    Receives periodic state syncs from the primary.  When syncs stop
    arriving for ``failover_timeout`` seconds, the standby promotes
    itself: it adopts the mirrored state, announces the failover to
    every Matrix server (which switch their coordinator address), and
    recomputes/pushes fresh overlap tables.  This is the "well
    understood replication technique" the paper gestures at, in its
    simplest primary/backup form.
    """

    def __init__(
        self,
        config: MatrixConfig,
        name: str = "mc-backup",
        failover_timeout: float = 3.0,
    ) -> None:
        super().__init__(config, name=name)
        self._failover_timeout = failover_timeout
        self._last_sync: float | None = None
        self._monitor = None
        self.promoted = False
        self.promoted_at: float | None = None
        #: Called (with this standby) right after promotion — the
        #: deployment uses it to point future spawns at the new MC.
        self.on_promote = None

    def start_monitoring(self, check_interval: float = 1.0) -> None:
        """Begin watching the primary's sync heartbeats."""
        self._monitor = self.sim.every(check_interval, self._check_primary)

    def dispatch(self, message: Message) -> None:
        # Before promotion every MC message except the sync heartbeat
        # belongs to the primary; receiving one here is a misdirected
        # stray — drop it.
        if not self.promoted and message.kind != "mc.sync":
            return
        super().dispatch(message)

    @handles("mc.sync")
    def _on_sync(self, message: Message) -> None:
        state: dict = message.payload
        self._last_sync = self.sim.now
        if self.promoted:
            return  # a zombie primary's stale sync must not demote us
        self._partitions = dict(state["partitions"])
        self._game_server_of = dict(state["game_server_of"])
        self._radius = state["radius"]
        self._version = state["version"]
        self._owner_index = None

    def _check_primary(self) -> None:
        if self.promoted or self._last_sync is None:
            return
        if self.sim.now - self._last_sync < self._failover_timeout:
            return
        self._promote()

    def _promote(self) -> None:
        """Take over coordination after the primary went silent.

        The mirrored map is only a *notification list*, not truth: any
        split or reclaim announced to the primary after its last sync
        is missing from it, so pushing it back out could overwrite a
        server's newer partition with a stale one.  Instead the map is
        rebuilt from scratch: every known server is told to fail over,
        the failover handler makes each one re-register its current
        range (and cascade to its children, whom the standby may never
        have heard of), and each registration recomputes and pushes
        fresh tables.  The synced version is kept, so every post-
        promotion push supersedes anything the dead primary sent.
        """
        self.promoted = True
        self.promoted_at = self.sim.now
        if self._monitor is not None:
            self._monitor.stop()
        known = list(self._partitions)
        self._partitions = {}
        self._game_server_of = {}
        self._owner_index = None
        for ms_name in known:
            self.send(
                ms_name,
                "mc.failover",
                self.name,
                size_bytes=self._config.wire.control_bytes,
            )
        if self.on_promote is not None:
            self.on_promote(self)
