"""The server resource pool.

§3.2.3: "a Matrix server will first check, using some non-Matrix
external entity, for an available Matrix server."  This models that
entity: a finite pool of spare hosts with a provisioning delay.  When
the pool is exhausted, acquisition fails — which is exactly the regime
where Matrix degrades to static-partitioning behaviour (and what the
scalability bench explores).
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class ServerPool:
    """A finite pool of spare server hosts."""

    def __init__(
        self,
        sim: "Simulator",
        capacity: int,
        acquire_delay: float = 0.0,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self._sim = sim
        self._capacity = capacity
        self._available = capacity
        self._acquire_delay = acquire_delay
        self._next_host = 0
        self._issued: set[str] = set()
        #: Reserved hosts whose provisioning callback has not fired yet
        #: (they belong to nobody until it does — leak audits skip them).
        self._provisioning: set[str] = set()
        self.acquire_attempts = 0
        self.acquire_failures = 0

    @property
    def capacity(self) -> int:
        """Total hosts the pool started with."""
        return self._capacity

    @property
    def available(self) -> int:
        """Hosts currently free."""
        return self._available

    @property
    def in_use(self) -> int:
        """Hosts currently handed out."""
        return self._capacity - self._available

    @property
    def issued(self) -> frozenset[str]:
        """Ids of hosts currently handed out (leak audits)."""
        return frozenset(self._issued)

    @property
    def provisioning(self) -> frozenset[str]:
        """Reserved hosts still inside their provisioning delay."""
        return frozenset(self._provisioning)

    def try_acquire(self, callback: Callable[[str | None], None]) -> bool:
        """Request a host; *callback* fires with a host id or ``None``.

        The host id arrives after the provisioning delay (models boot +
        image activation).  Returns ``True`` when a host was reserved,
        ``False`` when the pool was empty (callback still fires, with
        ``None``, so callers have one code path).
        """
        self.acquire_attempts += 1
        if self._available == 0:
            self.acquire_failures += 1
            self._sim.after(0.0, lambda: callback(None))
            return False
        self._available -= 1
        self._next_host += 1
        host_id = f"host-{self._next_host}"
        self._issued.add(host_id)
        self._provisioning.add(host_id)

        def deliver() -> None:
            self._provisioning.discard(host_id)
            callback(host_id)

        self._sim.after(self._acquire_delay, deliver)
        return True

    def release(self, host_id: str) -> bool:
        """Return a host to the pool.

        Hosts the pool never issued (e.g. the bootstrap server's own
        machine, or grid-bootstrap hosts) are ignored — they were never
        pool capacity.  Double-releasing an issued host raises.
        """
        if host_id not in self._issued:
            return False
        if self._available >= self._capacity:
            raise RuntimeError("release would exceed pool capacity")
        self._issued.discard(host_id)
        self._provisioning.discard(host_id)
        self._available += 1
        return True
