"""Deployment services a Matrix server calls out to."""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.geometry import Rect, Vec2


class Fabric(Protocol):
    """Out-of-band infrastructure behind a Matrix server.

    Models the server pool's provisioning workflow and the local game
    server's own data (client positions are read only at split time, to
    place a load-weighted cut).
    """

    def acquire_host(self, callback) -> None:
        """Request a spare host; callback gets a host id or ``None``."""

    def release_host(self, host_id: str) -> None:
        """Return an acquired-but-unused host (cancelled split paths)."""

    def spawn_pair(self, host_id: str, partition: Rect, parent: str, callback) -> None:
        """Create a Matrix+game server pair; callback gets (ms, gs) names."""

    def decommission_pair(self, matrix_name: str, host_id: str | None) -> None:
        """Remove a reclaimed pair from the network, free its host.

        ``host_id=None`` frees whichever host the pair was spawned on
        (used by cancelled-split cleanup, which may no longer hold the
        id it originally passed to :meth:`spawn_pair`)."""

    def client_positions(self, game_server: str) -> Sequence[Vec2]:
        """Positions of the clients on *game_server* (split-time only)."""
