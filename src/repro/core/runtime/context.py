"""Shared state of one Matrix server's runtime components.

The runtime package is built from cohesive components (router,
lifecycle, transfer, gossip, queries).  They communicate through one
:class:`ServerContext` — the single place the server's mutable state
lives — rather than through each other's internals, so each component
can be read, tested and replaced on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import MatrixConfig
from repro.core.policy import ChildLoad, LoadPolicy
from repro.core.splitting import SplitStrategy
from repro.geometry import PartitionIndex, Rect, RegionIndex, metric_by_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime.fabric import Fabric
    from repro.net.node import Node


@dataclass(slots=True)
class ChildRecord:
    """Bookkeeping for one spawned child (LIFO reclaim stack entry)."""

    matrix_name: str
    game_server: str
    host_id: str
    born_at: float


@dataclass(slots=True)
class ServerStats:
    """Counters the harness and benches read off a Matrix server."""

    radius_fallbacks: int = 0
    forwarded_packets: int = 0
    delivered_packets: int = 0
    stale_forwards: int = 0
    misrouted_packets: int = 0
    local_only_packets: int = 0
    failed_splits: int = 0
    failed_reclaims: int = 0
    splits_completed: int = 0
    reclaims_completed: int = 0


class ServerContext:
    """Mutable state shared by one server's runtime components."""

    def __init__(
        self,
        node: "Node",
        config: MatrixConfig,
        game_server: str,
        fabric: "Fabric",
        partition: Rect,
        parent: str | None,
        host_id: str,
        coordinator: str,
        strategy: SplitStrategy,
    ) -> None:
        self.node = node
        self.config = config
        self.metric = metric_by_name(config.metric_name, world=config.world)
        self.game_server = game_server
        self.fabric = fabric
        self.partition = partition
        self.parent = parent
        self.host_id = host_id
        self.coordinator = coordinator
        self.strategy = strategy
        self.policy = LoadPolicy(config.policy)

        # One overlap table per visibility radius (§3.1): the default
        # plus any exception radii the game registered.
        self.tables: dict[float, RegionIndex] = {}
        self.default_radius = config.visibility_radius
        self.table_version = 0
        self.partitions: dict[str, Rect] = {}
        self.owner_index: PartitionIndex | None = None
        self.directory: dict[str, Rect] = {}
        self.server_map: dict[str, str] = {}

        self.children: list[ChildRecord] = []
        self.child_loads: dict[str, ChildLoad] = {}
        self.busy = False
        self.dying = False
        self.client_count = 0

        self.stats = ServerStats()

    # ------------------------------------------------------------------
    # Conveniences shared by every component
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The owning node's network name."""
        return self.node.name

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.node.sim.now

    def send(self, dst: str, kind: str, payload, size_bytes: int) -> None:
        """Send on behalf of the owning node (through its middleware)."""
        self.node.send(dst, kind, payload, size_bytes=size_bytes)

    def control_send(self, dst: str, kind: str, payload) -> None:
        """Send a fixed-size control-plane message."""
        self.send(dst, kind, payload, size_bytes=self.config.wire.control_bytes)

    @property
    def default_table(self) -> RegionIndex | None:
        """The default-radius overlap table (None until the first push)."""
        return self.tables.get(self.default_radius)

    def table_for(self, radius: float | None) -> RegionIndex | None:
        """The overlap table for *radius* (default when None/unknown).

        An unknown exception radius falls back to the default table —
        counted, so operators can see mis-registered radii.
        """
        if radius is None:
            return self.default_table
        table = self.tables.get(radius)
        if table is None:
            self.stats.radius_fallbacks += 1
            return self.default_table
        return table

    @property
    def perf(self):
        """The deployment's perf registry (None when instrumentation is off)."""
        return self.node.network.perf

    def owner_of(self, point) -> str | None:
        """Owner of *point* among the last pushed partitions (or None).

        The index is built lazily on the first lookup after a table
        push: owner lookups only happen on the rare misroute and
        remote-destination paths, so most pushes never pay the build.
        """
        if self.owner_index is None:
            if not self.partitions:
                return None
            self.owner_index = PartitionIndex(self.partitions, perf=self.perf)
        perf = self.perf
        if perf is not None:
            perf.counter("runtime.owner_lookups").inc()
        return self.owner_index.lookup(point)
