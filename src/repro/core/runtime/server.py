"""The Matrix server (§3.2.3) — "the heart of our distributed middleware".

The server itself is a thin facade: a :class:`~repro.net.node.Node`
whose declarative dispatch table routes each message kind to one of the
runtime components —

* :class:`~repro.core.runtime.router.SpatialRouter` — O(1) overlap-table
  forwarding and table installation;
* :class:`~repro.core.runtime.lifecycle.Lifecycle` — the split/reclaim
  state machines;
* :class:`~repro.core.runtime.transfer.StateTransfer` — chunked map
  state transfer;
* :class:`~repro.core.runtime.gossip.LoadMonitor` — load reports,
  parent/child gossip, policy decisions;
* :class:`~repro.core.runtime.queries.QueryRelay` — non-proximal
  consistency queries via the MC.

All components share one :class:`~repro.core.runtime.context.ServerContext`.
"""

from __future__ import annotations

from repro.core.config import MatrixConfig
from repro.core.messages import RegisterServer
from repro.core.policy import ChildLoad, LoadPolicy
from repro.core.runtime.context import ChildRecord, ServerContext, ServerStats
from repro.core.runtime.fabric import Fabric
from repro.core.runtime.gossip import LoadMonitor
from repro.core.runtime.lifecycle import Lifecycle
from repro.core.runtime.queries import QueryRelay
from repro.core.runtime.router import SpatialRouter
from repro.core.runtime.transfer import StateTransfer
from repro.core.splitting import SplitStrategy, strategy_by_name
from repro.geometry import Rect, RegionIndex
from repro.net.message import Message
from repro.net.node import Node, handles


class MatrixServer(Node):
    """One Matrix middleware server, co-located with one game server."""

    def __init__(
        self,
        name: str,
        game_server: str,
        config: MatrixConfig,
        fabric: Fabric,
        partition: Rect,
        parent: str | None = None,
        host_id: str = "host-0",
        coordinator: str = "mc",
        strategy: SplitStrategy | None = None,
    ) -> None:
        super().__init__(name, service_rate=config.matrix_service_rate)
        # Spawn-time partition centre: identical to the co-located game
        # server's anchor, so the sharded network homes the pair on one
        # lane (their loopback link must never cross a shard boundary).
        self.shard_anchor = partition.center
        self.ctx = ServerContext(
            node=self,
            config=config,
            game_server=game_server,
            fabric=fabric,
            partition=partition,
            parent=parent,
            host_id=host_id,
            coordinator=coordinator,
            strategy=strategy or strategy_by_name(config.split_strategy),
        )
        self.transfer = StateTransfer(self.ctx)
        self.lifecycle = Lifecycle(self.ctx, self.transfer)
        self.router = SpatialRouter(self.ctx)
        self.load = LoadMonitor(self.ctx, self.lifecycle)
        self.queries = QueryRelay(self.ctx)

    # ------------------------------------------------------------------
    # Introspection (stable facade over the shared context)
    # ------------------------------------------------------------------
    @property
    def partition(self) -> Rect:
        """The map range this server currently manages."""
        return self.ctx.partition

    @property
    def game_server(self) -> str:
        """Name of the co-located game server."""
        return self.ctx.game_server

    @property
    def parent(self) -> str | None:
        """Name of the Matrix server that spawned this one."""
        return self.ctx.parent

    @property
    def children(self) -> list[ChildRecord]:
        """Live children, oldest first (copy)."""
        return list(self.ctx.children)

    @property
    def child_loads(self) -> dict[str, ChildLoad]:
        """Latest gossiped load per child (copy)."""
        return dict(self.ctx.child_loads)

    @property
    def host_id(self) -> str:
        """Pool host this server runs on."""
        return self.ctx.host_id

    @property
    def coordinator(self) -> str:
        """Name of the MC this server currently follows."""
        return self.ctx.coordinator

    @property
    def policy(self) -> LoadPolicy:
        """The split/reclaim policy state machine."""
        return self.ctx.policy

    @property
    def table_version(self) -> int:
        """Version of the installed overlap table (0 = none yet)."""
        return self.ctx.table_version

    @property
    def overlap_tables(self) -> dict[float, RegionIndex]:
        """Installed overlap tables keyed by visibility radius (copy)."""
        return dict(self.ctx.tables)

    @property
    def default_table(self) -> RegionIndex | None:
        """The default-radius overlap table (None until the first push)."""
        return self.ctx.default_table

    @property
    def directory(self) -> dict[str, Rect]:
        """Last pushed game-server → partition directory (copy)."""
        return dict(self.ctx.directory)

    @property
    def known_partitions(self) -> dict[str, Rect]:
        """Last pushed Matrix-server → partition map (copy)."""
        return dict(self.ctx.partitions)

    @property
    def server_map(self) -> dict[str, str]:
        """Last pushed Matrix-server → game-server map (copy)."""
        return dict(self.ctx.server_map)

    @property
    def busy(self) -> bool:
        """True while a split or reclaim is in flight."""
        return self.ctx.busy

    @property
    def dying(self) -> bool:
        """True once this server is being reclaimed."""
        return self.ctx.dying

    @dying.setter
    def dying(self, value: bool) -> None:
        self.ctx.dying = value

    @property
    def client_count(self) -> int:
        """Client count from the latest game-server load report."""
        return self.ctx.client_count

    @property
    def stats(self) -> ServerStats:
        """The routing/lifecycle counters."""
        return self.ctx.stats

    # Flat counter aliases, kept for the harness and benches.
    @property
    def radius_fallbacks(self) -> int:
        return self.ctx.stats.radius_fallbacks

    @property
    def forwarded_packets(self) -> int:
        return self.ctx.stats.forwarded_packets

    @property
    def delivered_packets(self) -> int:
        return self.ctx.stats.delivered_packets

    @property
    def stale_forwards(self) -> int:
        return self.ctx.stats.stale_forwards

    @property
    def misrouted_packets(self) -> int:
        return self.ctx.stats.misrouted_packets

    @property
    def local_only_packets(self) -> int:
        return self.ctx.stats.local_only_packets

    @property
    def failed_splits(self) -> int:
        return self.ctx.stats.failed_splits

    @property
    def failed_reclaims(self) -> int:
        return self.ctx.stats.failed_reclaims

    @property
    def splits_completed(self) -> int:
        return self.ctx.stats.splits_completed

    @property
    def reclaims_completed(self) -> int:
        return self.ctx.stats.reclaims_completed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register_with_coordinator(self) -> None:
        """Announce this server's map range to the MC (bootstrap only;
        splits/reclaims are announced atomically by the parent)."""
        ctx = self.ctx
        reg = RegisterServer(
            matrix_server=self.name,
            game_server=ctx.game_server,
            partition=ctx.partition,
            visibility_radius=ctx.config.visibility_radius,
        )
        ctx.control_send(ctx.coordinator, "mc.register", reg)

    # ------------------------------------------------------------------
    # Message dispatch (kind -> component)
    # ------------------------------------------------------------------
    @handles("game.spatial")
    def _on_spatial(self, message: Message) -> None:
        self.router.on_spatial(message)

    @handles("matrix.forward")
    def _on_forward(self, message: Message) -> None:
        self.router.on_forward(message)

    @handles("mc.table")
    def _on_table(self, message: Message) -> None:
        self.router.on_table(message)

    @handles("mc.failover")
    def _on_failover(self, message: Message) -> None:
        self.follow_coordinator(message.payload)

    def follow_coordinator(self, new_coordinator: str) -> None:
        """Switch to a promoted standby MC and help it converge.

        The standby rebuilds its map from re-registrations (its mirror
        may predate recent splits), so on first notice this server
        re-announces its current range and cascades the failover down
        to its children — whom the standby may never have heard of.
        Duplicate notices (fabric sweep + wire-level failover + parent
        cascade) are ignored.
        """
        if self.ctx.coordinator == new_coordinator:
            return
        self.ctx.coordinator = new_coordinator
        self.register_with_coordinator()
        for child in self.ctx.children:
            self.ctx.control_send(
                child.matrix_name, "mc.failover", new_coordinator
            )

    @handles("matrix.load")
    def _on_load_report(self, message: Message) -> None:
        self.load.on_load_report(message)

    @handles("matrix.gossip")
    def _on_gossip(self, message: Message) -> None:
        self.load.on_gossip(message)

    @handles("matrix.query")
    def _on_game_query(self, message: Message) -> None:
        self.queries.on_game_query(message)

    @handles("mc.reply")
    def _on_mc_reply(self, message: Message) -> None:
        self.queries.on_mc_reply(message)

    @handles("matrix.ctl.split_grant")
    def _on_split_grant(self, message: Message) -> None:
        self.lifecycle.on_split_grant(message)

    @handles("matrix.ctl.reclaim_req")
    def _on_reclaim_request(self, message: Message) -> None:
        self.lifecycle.on_reclaim_request(message)

    @handles("matrix.ctl.reclaim_nack")
    def _on_reclaim_nack(self, message: Message) -> None:
        self.lifecycle.on_reclaim_nack(message)

    @handles("matrix.ctl.reclaim_ack")
    def _on_reclaim_ack(self, message: Message) -> None:
        self.lifecycle.on_reclaim_ack(message)

    @handles("matrix.ctl.reclaim_abort")
    def _on_reclaim_abort(self, message: Message) -> None:
        self.lifecycle.on_reclaim_abort(message)

    @handles("matrix.state.begin")
    def _on_state_begin(self, message: Message) -> None:
        self.transfer.on_begin(message)

    @handles("matrix.state.chunk")
    def _on_state_chunk(self, message: Message) -> None:
        self.transfer.on_chunk(message)

    @handles("matrix.state.done")
    def _on_state_done(self, message: Message) -> None:
        self.transfer.on_done(message)

    # Fabric replies (sharded runs only: the message-passing fabric
    # proxy answers acquire/spawn requests over the wire; the classic
    # deployment calls back directly and never sends these kinds).
    @handles("fabric.grant")
    def _on_fabric_grant(self, message: Message) -> None:
        self.ctx.fabric.deliver_grant(message.payload)

    @handles("fabric.spawned")
    def _on_fabric_spawned(self, message: Message) -> None:
        self.ctx.fabric.deliver_spawned(message.payload)
