"""Split and reclaim state machines (§3.2.3).

* **Splitting** — on sustained overload, acquire a host from the pool,
  split the partition (default: split-to-left), spawn a child Matrix
  server + game server pair, transfer the map state, then atomically
  announce the new ranges to the MC.  Purely local decisions; recursion
  happens naturally because the policy keeps firing while overloaded.
* **Reclamation** — on sustained underload, reclaim the youngest
  childless child (LIFO keeps merged partitions rectangular), evacuate
  its clients to the parent's game server, transfer state back, release
  the host to the pool, and announce the merge to the MC.
* **Abort and rollback** — every in-flight operation can be cancelled
  (peer crashed, watchdog fired, server is dying): acquired hosts go
  back to the pool, spawned-but-unannounced children are decommissioned,
  pending transfers are forgotten so late completions are no-ops, and
  the policy's success cooldown is restored in favour of the distinct
  failed-attempt backoff.  Watchdogs are armed only when
  ``MatrixConfig.lifecycle_timeout`` is set (the chaos driver does);
  without injected faults no peer can go silent mid-protocol.
"""

from __future__ import annotations

from repro.core.messages import (
    ReclaimAck,
    ReclaimNotice,
    ReclaimRequest,
    SplitGrant,
    SplitNotice,
)
from repro.core.runtime.context import ChildRecord, ServerContext
from repro.core.runtime.transfer import StateTransfer
from repro.geometry import Rect
from repro.net.message import Message


class Lifecycle:
    """Orchestrates this server's splits and reclaims."""

    def __init__(self, ctx: ServerContext, transfer: StateTransfer) -> None:
        self._ctx = ctx
        self._transfer = transfer
        transfer.on_complete("split", self._finalize_split)
        transfer.on_complete("reclaim", self._finalize_reclaim_child)
        # Crash semantics: no callback may act for a halted lifecycle.
        self._halted = False
        # Split-in-flight context.
        self._split_active = False
        self._pending_kept: Rect | None = None
        self._pending_given: Rect | None = None
        self._pending_host: str | None = None
        self._pending_child: tuple[str, str] | None = None
        # Reclaim-in-flight context (on the parent side).
        self._reclaiming: ChildRecord | None = None
        # Reclaim-in-flight context (on the child side).
        self._evacuating = False
        # Watchdog epochs: a check fires only if no newer operation
        # (or completion) superseded the one it was armed for.
        self._split_epoch = 0
        self._reclaim_epoch = 0
        self._evacuate_epoch = 0

    # ------------------------------------------------------------------
    # Introspection (used by the deployment supervisor and tests)
    # ------------------------------------------------------------------
    @property
    def split_in_flight(self) -> bool:
        """True between ``begin_split`` and its finalize/abort."""
        return self._split_active

    @property
    def in_flight_host(self) -> str | None:
        """Pool host held by the in-flight split (None outside one)."""
        return self._pending_host

    @property
    def in_flight_child(self) -> tuple[str, str] | None:
        """(ms, gs) names of the spawned-but-unannounced split child."""
        return self._pending_child

    # ------------------------------------------------------------------
    # Split orchestration
    # ------------------------------------------------------------------
    def begin_split(self) -> None:
        ctx = self._ctx
        ctx.busy = True
        self._split_active = True
        self._split_epoch += 1
        ctx.policy.note_split_attempt(ctx.now)
        self._arm_watchdog(self._check_split_stuck, self._split_epoch)
        ctx.fabric.acquire_host(self._on_host_acquired)

    def _on_host_acquired(self, host_id: str | None) -> None:
        ctx = self._ctx
        if self._halted or not self._split_active:
            # Aborted (or the whole server crashed) while the pool was
            # provisioning: the host was never recorded here, so it
            # must go straight back — a corpse continuing its split
            # would spawn a child nobody can ever reclaim.
            if host_id is not None:
                ctx.fabric.release_host(host_id)
            return
        if ctx.dying:
            # This server is being reclaimed: the split is off, and the
            # freshly granted host must not leak with it.
            if host_id is not None:
                ctx.fabric.release_host(host_id)
            self._split_failed()
            return
        if host_id is None:
            # Pool exhausted: Matrix degrades to static behaviour here.
            self._split_failed()
            return
        positions = ctx.fabric.client_positions(ctx.game_server)
        kept, given = ctx.strategy.split(ctx.partition, positions)
        self._pending_kept = kept
        self._pending_given = given
        self._pending_host = host_id
        ctx.fabric.spawn_pair(host_id, given, ctx.name, self._on_child_ready)

    def _on_child_ready(self, child_ms: str, child_gs: str) -> None:
        if self._halted or not self._split_active or self._pending_given is None:
            # The split was cancelled while the pair was booting: the
            # fresh pair is an orphan — tear it down and free its host
            # (the fabric resolves the host from its own records).
            self._ctx.fabric.decommission_pair(child_ms, None)
            return
        ctx = self._ctx
        self._pending_child = (child_ms, child_gs)
        grant = SplitGrant(
            parent=ctx.name,
            child_partition=self._pending_given,
            parent_partition=self._pending_kept,
        )
        ctx.control_send(child_ms, "matrix.ctl.split_grant", grant)
        self._transfer.start(child_ms, self._pending_given, context="split")

    def _finalize_split(self) -> None:
        if self._pending_child is None:
            return  # split was aborted; the late completion is a no-op
        ctx = self._ctx
        child_ms, child_gs = self._pending_child
        ctx.partition = self._pending_kept
        ctx.children.append(
            ChildRecord(
                matrix_name=child_ms,
                game_server=child_gs,
                host_id=self._pending_host,
                born_at=ctx.now,
            )
        )
        notice = SplitNotice(
            parent=ctx.name,
            parent_partition=self._pending_kept,
            child=child_ms,
            child_game_server=child_gs,
            child_partition=self._pending_given,
            visibility_radius=ctx.config.visibility_radius,
        )
        ctx.control_send(ctx.coordinator, "mc.split", notice)
        self._clear_split_state()
        ctx.policy.note_split_success()
        ctx.stats.splits_completed += 1
        ctx.busy = False

    def _clear_split_state(self) -> None:
        self._split_active = False
        self._split_epoch += 1
        self._pending_kept = None
        self._pending_given = None
        self._pending_host = None
        self._pending_child = None

    def _split_failed(self) -> None:
        """Roll up a split that never got resources (no cleanup owed)."""
        ctx = self._ctx
        self._clear_split_state()
        ctx.policy.note_split_failure(ctx.now)
        ctx.stats.failed_splits += 1
        ctx.busy = False

    def abort_split(self) -> bool:
        """Cancel the in-flight split and roll back its resources.

        Releases the acquired host (or decommissions the spawned child
        pair), forgets the pending state transfer so a late completion
        is a no-op, restores the policy cooldown and backs off.
        Returns False when no split was in flight.
        """
        if not self._split_active:
            return False
        ctx = self._ctx
        self._transfer.cancel("split")
        child = self._pending_child
        host = self._pending_host
        if child is not None:
            ctx.fabric.decommission_pair(child[0], host)
        elif host is not None:
            ctx.fabric.release_host(host)
        self._split_failed()
        return True

    def _check_split_stuck(self, epoch: int) -> None:
        if epoch != self._split_epoch or not self._split_active:
            return
        self.abort_split()

    def on_split_grant(self, message: Message) -> None:
        # The child was constructed with its partition already; the
        # grant confirms the parent relationship for the protocol's sake.
        grant: SplitGrant = message.payload
        self._ctx.parent = grant.parent

    # ------------------------------------------------------------------
    # Reclaim orchestration
    # ------------------------------------------------------------------
    def begin_reclaim(self) -> None:
        ctx = self._ctx
        child = ctx.children[-1]
        ctx.busy = True
        self._reclaiming = child
        self._reclaim_epoch += 1
        ctx.policy.note_reclaim_attempt(ctx.now)
        self._arm_watchdog(self._check_reclaim_stuck, self._reclaim_epoch)
        request = ReclaimRequest(
            parent=ctx.name, parent_game_server=ctx.game_server
        )
        ctx.control_send(child.matrix_name, "matrix.ctl.reclaim_req", request)

    def on_reclaim_request(self, message: Message) -> None:
        ctx = self._ctx
        request: ReclaimRequest = message.payload
        if ctx.busy or ctx.children:
            # Mid-split, or we have children of our own: refuse.
            ctx.control_send(message.src, "matrix.ctl.reclaim_nack", None)
            return
        ctx.busy = True
        ctx.dying = True
        self._evacuating = True
        self._evacuate_epoch += 1
        self._arm_watchdog(self._check_evacuate_stuck, self._evacuate_epoch)
        # Evacuate our clients to the parent's game server, then send
        # the dynamic state back.
        ctx.control_send(ctx.game_server, "gs.evacuate", request.parent_game_server)
        self._transfer.start(request.parent, ctx.partition, "reclaim")

    def _finalize_reclaim_child(self) -> None:
        """Child side: state is back at the parent; announce and die."""
        ctx = self._ctx
        self._evacuating = False
        ack = ReclaimAck(
            child=ctx.name,
            child_partition=ctx.partition,
            client_count=ctx.client_count,
        )
        ctx.control_send(ctx.parent, "matrix.ctl.reclaim_ack", ack)

    def _check_evacuate_stuck(self, epoch: int) -> None:
        """Child side: the parent vanished mid-reclaim — come back up."""
        if epoch != self._evacuate_epoch or not self._evacuating:
            return
        ctx = self._ctx
        self._evacuating = False
        self._transfer.cancel("reclaim")
        ctx.dying = False
        ctx.busy = False
        # The evacuation already shut the game server down; resume its
        # periodic duties so the partition serves rejoining clients.
        ctx.control_send(ctx.game_server, "gs.resume", None)

    def on_reclaim_nack(self, message: Message) -> None:
        child = self._reclaiming
        if child is None or message.src != child.matrix_name:
            # No reclaim in flight, or a queue-delayed nack from an
            # earlier (already timed-out) reclaim: not ours to abort.
            return
        # A nacking child refused before going dying: no notice owed.
        self._abort_reclaim(notify_child=False)

    def _abort_reclaim(self, notify_child: bool) -> None:
        """Parent side: the reclaim was refused or timed out.

        With *notify_child* the child is told the reclaim is off
        (``reclaim_abort``): if it already went ``dying`` it must come
        back up and keep serving its partition — otherwise it would
        idle as a zombie forever, holding its host with its game
        server shut down.
        """
        ctx = self._ctx
        child = self._reclaiming
        self._reclaiming = None
        self._reclaim_epoch += 1
        if notify_child and child is not None:
            ctx.control_send(
                child.matrix_name, "matrix.ctl.reclaim_abort", None
            )
        ctx.policy.note_reclaim_failure(ctx.now)
        ctx.stats.failed_reclaims += 1
        ctx.busy = False

    def _check_reclaim_stuck(self, epoch: int) -> None:
        if epoch != self._reclaim_epoch or self._reclaiming is None:
            return
        # Timed out mid-protocol: the child may already be evacuating.
        self._abort_reclaim(notify_child=True)

    def on_reclaim_abort(self, message: Message) -> None:
        """Child side: the parent cancelled the reclaim — come back up.

        Idempotent with the evacuate watchdog and harmless after a
        plain nack (the child never went dying).  Covers the window
        where the child's state transfer completed *after* the parent
        aborted: the parent drops the stale ack, and this notice undoes
        the child's shutdown.
        """
        ctx = self._ctx
        if not ctx.dying:
            return
        self._evacuating = False
        self._evacuate_epoch += 1
        self._transfer.cancel("reclaim")
        ctx.dying = False
        ctx.busy = False
        ctx.control_send(ctx.game_server, "gs.resume", None)

    def on_reclaim_ack(self, message: Message) -> None:
        ctx = self._ctx
        ack: ReclaimAck = message.payload
        child = self._reclaiming
        if child is None or child.matrix_name != ack.child:
            # Stale ack from a reclaim this parent already aborted:
            # the child finished evacuating for nothing — revive it.
            ctx.control_send(ack.child, "matrix.ctl.reclaim_abort", None)
            return
        ctx.partition = ctx.partition.union_bounds(ack.child_partition)
        ctx.children = [
            c for c in ctx.children if c.matrix_name != ack.child
        ]
        ctx.child_loads.pop(ack.child, None)
        notice = ReclaimNotice(
            parent=ctx.name,
            merged_partition=ctx.partition,
            child=ack.child,
        )
        ctx.control_send(ctx.coordinator, "mc.reclaim", notice)
        ctx.fabric.decommission_pair(child.matrix_name, child.host_id)
        self._reclaiming = None
        self._reclaim_epoch += 1
        ctx.policy.note_reclaim_success()
        ctx.stats.reclaims_completed += 1
        ctx.busy = False

    # ------------------------------------------------------------------
    # Watchdogs
    # ------------------------------------------------------------------
    def _arm_watchdog(self, check, epoch: int) -> None:
        """Schedule *check(epoch)* after the configured timeout, if any."""
        timeout = self._ctx.config.lifecycle_timeout
        if timeout is None:
            return
        self._ctx.node.sim.after(timeout, lambda: check(epoch))

    def halt(self) -> None:
        """Crash semantics: disarm watchdogs and dead-letter callbacks.

        Bumps all epochs so armed checks become no-ops — a dead host
        must not keep executing abort/resume logic (sending to removed
        nodes, double-decommissioning the child the supervisor already
        reclaimed) — and flags the lifecycle so a pool-acquire or
        pair-boot callback landing after the crash returns its
        resources instead of continuing the split post-mortem.
        In-flight state is deliberately left intact: the supervisor's
        autopsy reads it to reclaim the corpse's leases.
        """
        self._halted = True
        self._split_epoch += 1
        self._reclaim_epoch += 1
        self._evacuate_epoch += 1
