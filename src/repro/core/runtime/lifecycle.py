"""Split and reclaim state machines (§3.2.3).

* **Splitting** — on sustained overload, acquire a host from the pool,
  split the partition (default: split-to-left), spawn a child Matrix
  server + game server pair, transfer the map state, then atomically
  announce the new ranges to the MC.  Purely local decisions; recursion
  happens naturally because the policy keeps firing while overloaded.
* **Reclamation** — on sustained underload, reclaim the youngest
  childless child (LIFO keeps merged partitions rectangular), evacuate
  its clients to the parent's game server, transfer state back, release
  the host to the pool, and announce the merge to the MC.
"""

from __future__ import annotations

from repro.core.messages import (
    ReclaimAck,
    ReclaimNotice,
    ReclaimRequest,
    SplitGrant,
    SplitNotice,
)
from repro.core.runtime.context import ChildRecord, ServerContext
from repro.core.runtime.transfer import StateTransfer
from repro.geometry import Rect
from repro.net.message import Message


class Lifecycle:
    """Orchestrates this server's splits and reclaims."""

    def __init__(self, ctx: ServerContext, transfer: StateTransfer) -> None:
        self._ctx = ctx
        self._transfer = transfer
        transfer.on_complete("split", self._finalize_split)
        transfer.on_complete("reclaim", self._finalize_reclaim_child)
        # Split-in-flight context.
        self._pending_kept: Rect | None = None
        self._pending_given: Rect | None = None
        self._pending_host: str | None = None
        self._pending_child: tuple[str, str] | None = None
        # Reclaim-in-flight context (on the parent side).
        self._reclaiming: ChildRecord | None = None

    # ------------------------------------------------------------------
    # Split orchestration
    # ------------------------------------------------------------------
    def begin_split(self) -> None:
        ctx = self._ctx
        ctx.busy = True
        ctx.policy.note_split(ctx.now)
        ctx.fabric.acquire_host(self._on_host_acquired)

    def _on_host_acquired(self, host_id: str | None) -> None:
        ctx = self._ctx
        if ctx.dying:
            ctx.busy = False
            return
        if host_id is None:
            # Pool exhausted: Matrix degrades to static behaviour here.
            ctx.stats.failed_splits += 1
            ctx.busy = False
            return
        positions = ctx.fabric.client_positions(ctx.game_server)
        kept, given = ctx.strategy.split(ctx.partition, positions)
        self._pending_kept = kept
        self._pending_given = given
        self._pending_host = host_id
        ctx.fabric.spawn_pair(host_id, given, ctx.name, self._on_child_ready)

    def _on_child_ready(self, child_ms: str, child_gs: str) -> None:
        if self._pending_given is None:  # defensive: cancelled split
            return
        ctx = self._ctx
        self._pending_child = (child_ms, child_gs)
        grant = SplitGrant(
            parent=ctx.name,
            child_partition=self._pending_given,
            parent_partition=self._pending_kept,
        )
        ctx.control_send(child_ms, "matrix.ctl.split_grant", grant)
        self._transfer.start(child_ms, self._pending_given, context="split")

    def _finalize_split(self) -> None:
        ctx = self._ctx
        child_ms, child_gs = self._pending_child
        ctx.partition = self._pending_kept
        ctx.children.append(
            ChildRecord(
                matrix_name=child_ms,
                game_server=child_gs,
                host_id=self._pending_host,
                born_at=ctx.now,
            )
        )
        notice = SplitNotice(
            parent=ctx.name,
            parent_partition=self._pending_kept,
            child=child_ms,
            child_game_server=child_gs,
            child_partition=self._pending_given,
            visibility_radius=ctx.config.visibility_radius,
        )
        ctx.control_send(ctx.coordinator, "mc.split", notice)
        self._pending_kept = None
        self._pending_given = None
        self._pending_host = None
        self._pending_child = None
        ctx.stats.splits_completed += 1
        ctx.busy = False

    def on_split_grant(self, message: Message) -> None:
        # The child was constructed with its partition already; the
        # grant confirms the parent relationship for the protocol's sake.
        grant: SplitGrant = message.payload
        self._ctx.parent = grant.parent

    # ------------------------------------------------------------------
    # Reclaim orchestration
    # ------------------------------------------------------------------
    def begin_reclaim(self) -> None:
        ctx = self._ctx
        child = ctx.children[-1]
        ctx.busy = True
        self._reclaiming = child
        ctx.policy.note_reclaim(ctx.now)
        request = ReclaimRequest(
            parent=ctx.name, parent_game_server=ctx.game_server
        )
        ctx.control_send(child.matrix_name, "matrix.ctl.reclaim_req", request)

    def on_reclaim_request(self, message: Message) -> None:
        ctx = self._ctx
        request: ReclaimRequest = message.payload
        if ctx.busy or ctx.children:
            # Mid-split, or we have children of our own: refuse.
            ctx.control_send(message.src, "matrix.ctl.reclaim_nack", None)
            return
        ctx.busy = True
        ctx.dying = True
        # Evacuate our clients to the parent's game server, then send
        # the dynamic state back.
        ctx.control_send(ctx.game_server, "gs.evacuate", request.parent_game_server)
        self._transfer.start(request.parent, ctx.partition, "reclaim")

    def _finalize_reclaim_child(self) -> None:
        """Child side: state is back at the parent; announce and die."""
        ctx = self._ctx
        ack = ReclaimAck(
            child=ctx.name,
            child_partition=ctx.partition,
            client_count=ctx.client_count,
        )
        ctx.control_send(ctx.parent, "matrix.ctl.reclaim_ack", ack)

    def on_reclaim_nack(self, message: Message) -> None:
        self._reclaiming = None
        self._ctx.busy = False

    def on_reclaim_ack(self, message: Message) -> None:
        ctx = self._ctx
        ack: ReclaimAck = message.payload
        child = self._reclaiming
        if child is None or child.matrix_name != ack.child:
            return
        ctx.partition = ctx.partition.union_bounds(ack.child_partition)
        ctx.children = [
            c for c in ctx.children if c.matrix_name != ack.child
        ]
        ctx.child_loads.pop(ack.child, None)
        notice = ReclaimNotice(
            parent=ctx.name,
            merged_partition=ctx.partition,
            child=ack.child,
        )
        ctx.control_send(ctx.coordinator, "mc.reclaim", notice)
        ctx.fabric.decommission_pair(child.matrix_name, child.host_id)
        self._reclaiming = None
        ctx.stats.reclaims_completed += 1
        ctx.busy = False
