"""Non-proximal consistency query relay (§3.2.4).

The rare long-range interaction (a teleport, a map-wide spell) needs
the consistency set of a point far outside the local overlap tables.
The game server asks its Matrix server, which relays the question to
the MC and translates the answer back into game-server names.
"""

from __future__ import annotations

import itertools

from repro.core.messages import ConsistencyQuery, ConsistencyReply
from repro.core.runtime.context import ServerContext
from repro.net.message import Message


class QueryRelay:
    """Relays game-server consistency queries through the MC."""

    _query_ids = itertools.count(1)

    def __init__(self, ctx: ServerContext) -> None:
        self._ctx = ctx
        #: mc request id -> originating game-server request id.
        self._relay: dict[int, int] = {}

    def on_game_query(self, message: Message) -> None:
        ctx = self._ctx
        query: ConsistencyQuery = message.payload
        mc_id = next(self._query_ids)
        self._relay[mc_id] = query.request_id
        relayed = ConsistencyQuery(
            point=query.point, exclude=ctx.name, request_id=mc_id
        )
        ctx.control_send(ctx.coordinator, "mc.query", relayed)

    def on_mc_reply(self, message: Message) -> None:
        ctx = self._ctx
        reply: ConsistencyReply = message.payload
        gs_request = self._relay.pop(reply.request_id, None)
        if gs_request is None:
            return
        game_servers = frozenset(
            ctx.server_map[ms] for ms in reply.servers if ms in ctx.server_map
        )
        out = ConsistencyReply(request_id=gs_request, servers=game_servers)
        ctx.control_send(ctx.game_server, "gs.query_reply", out)
