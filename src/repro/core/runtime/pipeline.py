"""Builds a Matrix server's middleware pipeline from its config.

The deployment calls :func:`install_middleware` on every Matrix server
it creates, so one :class:`~repro.core.config.MiddlewareConfig` governs
the whole fleet — both endpoints of a batched link are guaranteed to
speak the batch format.

Stage order (outermost first): kind metrics, spatial batching, fault
injection.  Fault injection is innermost so drops/duplicates act on
*individual* packets before batching aggregates the survivors —
otherwise batching would consume the faulted kinds before the fault
stage ever saw them.  Metrics sits outermost: inbound it sees every wire
message (including ``net.batch``); outbound it does *not* see kinds
the batching stage absorbs (individual forwards are consumed before
they reach it, and flushed batches plus duplicate clones re-enter the
wire below the pipeline) — per-kind wire truth is ``network.stats``.
"""

from __future__ import annotations

import random

from repro.core.config import MatrixConfig
from repro.net.middleware import (
    FaultInjectionStage,
    KindMetricsStage,
    SpatialBatchingStage,
)
from repro.net.node import Node


def install_middleware(server: Node, config: MatrixConfig) -> None:
    """Install the configured pipeline stages on *server*."""
    mw = config.middleware
    if mw.kind_metrics:
        server.use(KindMetricsStage())
    if mw.batch_spatial_forwards:
        server.use(
            SpatialBatchingStage(
                window=mw.batch_window,
                header_bytes=mw.batch_header_bytes,
            )
        )
    if mw.fault_drop_rate or mw.fault_duplicate_rate:
        # One independent deterministic stream per server: seeding from
        # the (seed, name) string keeps streams stable across runs
        # regardless of creation order.
        rng = random.Random(f"{mw.fault_seed}:{server.name}")
        server.use(
            FaultInjectionStage(
                rng=rng,
                drop_rate=mw.fault_drop_rate,
                duplicate_rate=mw.fault_duplicate_rate,
                kinds=mw.fault_kinds,
            )
        )
