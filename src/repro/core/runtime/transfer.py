"""Chunked state transfer between Matrix servers (§3.2.2).

During a split the parent ships the dynamic map state of the given-away
area to the child; during a reclaim the child ships its state back.
Static assets (textures, geometry) are pre-cached on every host — only
pointers travel — so what moves here is the dynamic object state,
chunked to model bulk transfer over the LAN.

Chunks and the ``begin`` control message travel independently and may
reorder; the receiver tolerates chunks overtaking their ``begin``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.core.messages import StateBegin, StateChunk, StateDone
from repro.core.runtime.context import ServerContext
from repro.geometry import Rect
from repro.net.message import Message


@dataclass(slots=True)
class _IncomingTransfer:
    sender: str
    total_chunks: int  # 0 until the StateBegin arrives
    received: int
    context: str


class StateTransfer:
    """Both halves of the chunked transfer protocol for one server."""

    _transfer_ids = itertools.count(1)

    def __init__(self, ctx: ServerContext) -> None:
        self._ctx = ctx
        self._outgoing: dict[int, str] = {}  # transfer id -> context
        # Keyed by (sender, transfer id): transfer ids are only unique
        # per sending process, and under the process shard executor two
        # lanes' senders draw from independent counters.
        self._incoming: dict[tuple[str, int], _IncomingTransfer] = {}
        #: Completion callbacks keyed by transfer context ("split", ...).
        self._completions: dict[str, Callable[[], None]] = {}

    def on_complete(self, context: str, callback: Callable[[], None]) -> None:
        """Invoke *callback* when an outgoing *context* transfer finishes."""
        self._completions[context] = callback

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def start(self, peer: str, area_rect: Rect, context: str) -> None:
        """Send the dynamic map state for *area_rect* to *peer*."""
        ctx = self._ctx
        wire = ctx.config.wire
        object_count = max(1, int(area_rect.area * ctx.config.map_object_density))
        total_bytes = object_count * wire.state_object_bytes
        total_chunks = max(1, -(-total_bytes // wire.state_chunk_bytes))
        transfer_id = next(self._transfer_ids)
        self._outgoing[transfer_id] = context
        begin = StateBegin(
            transfer_id=transfer_id,
            total_chunks=total_chunks,
            total_bytes=total_bytes,
            context=context,
        )
        ctx.control_send(peer, "matrix.state.begin", begin)
        perf = ctx.perf
        if perf is not None:
            perf.counter("runtime.transfer_chunks").add(
                total_bytes, n=total_chunks
            )
        remaining = total_bytes
        for index in range(total_chunks):
            chunk_bytes = min(wire.state_chunk_bytes, remaining)
            remaining -= chunk_bytes
            ctx.send(
                peer,
                "matrix.state.chunk",
                StateChunk(transfer_id=transfer_id, index=index),
                size_bytes=chunk_bytes,
            )

    def cancel(self, context: str) -> int:
        """Forget every outgoing *context* transfer (abort path).

        A ``StateDone`` for a cancelled transfer finds no record, so the
        completion callback never fires — completions are no-ops after
        an abort.  Returns the number of transfers cancelled.
        """
        stale = [
            transfer_id
            for transfer_id, transfer_context in self._outgoing.items()
            if transfer_context == context
        ]
        for transfer_id in stale:
            del self._outgoing[transfer_id]
        return len(stale)

    def on_done(self, message: Message) -> None:
        """The receiver confirmed completion: fire the context callback."""
        done: StateDone = message.payload
        context = self._outgoing.pop(done.transfer_id, None)
        callback = self._completions.get(context) if context else None
        if callback is not None:
            callback()

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def on_begin(self, message: Message) -> None:
        begin: StateBegin = message.payload
        key = (message.src, begin.transfer_id)
        # A transfer record may already exist with buffered chunks.
        transfer = self._incoming.get(key)
        if transfer is None:
            transfer = _IncomingTransfer(
                sender=message.src, total_chunks=0, received=0, context=""
            )
            self._incoming[key] = transfer
        transfer.sender = message.src
        transfer.total_chunks = begin.total_chunks
        transfer.context = begin.context
        self._maybe_complete(key)

    def on_chunk(self, message: Message) -> None:
        chunk: StateChunk = message.payload
        key = (message.src, chunk.transfer_id)
        transfer = self._incoming.get(key)
        if transfer is None:
            # Chunk overtook its StateBegin: buffer the count.
            transfer = _IncomingTransfer(
                sender=message.src, total_chunks=0, received=0, context=""
            )
            self._incoming[key] = transfer
        transfer.received += 1
        self._maybe_complete(key)

    def _maybe_complete(self, key: tuple[str, int]) -> None:
        transfer = self._incoming.get(key)
        if transfer is None or transfer.total_chunks <= 0:
            return
        if transfer.received < transfer.total_chunks:
            return
        del self._incoming[key]
        self._ctx.control_send(
            transfer.sender, "matrix.state.done", StateDone(transfer_id=key[1])
        )
