"""The Matrix server runtime: cohesive components over a shared context.

:class:`~repro.core.runtime.server.MatrixServer` is a thin facade; the
mechanics live in the component modules (``router``, ``lifecycle``,
``transfer``, ``gossip``, ``queries``), which communicate only through
the shared :class:`~repro.core.runtime.context.ServerContext`.  See
``docs/ARCHITECTURE.md`` for the layer map.
"""

from repro.core.runtime.context import ChildRecord, ServerContext, ServerStats
from repro.core.runtime.fabric import Fabric
from repro.core.runtime.gossip import LoadMonitor
from repro.core.runtime.lifecycle import Lifecycle
from repro.core.runtime.pipeline import install_middleware
from repro.core.runtime.queries import QueryRelay
from repro.core.runtime.router import SpatialRouter
from repro.core.runtime.server import MatrixServer
from repro.core.runtime.transfer import StateTransfer

__all__ = [
    "ChildRecord",
    "Fabric",
    "Lifecycle",
    "LoadMonitor",
    "MatrixServer",
    "QueryRelay",
    "ServerContext",
    "ServerStats",
    "SpatialRouter",
    "StateTransfer",
    "install_middleware",
]
