"""Load reports and parent/child load gossip (§3.2.2, §3.2.3).

The co-located game server reports its load periodically; each server
additionally gossips its own load up to its parent so the parent can
judge whether the youngest child is reclaimable.  The policy state
machine turns the report stream into split/reclaim decisions, which are
handed to the :class:`~repro.core.runtime.lifecycle.Lifecycle`.
"""

from __future__ import annotations

from repro.core.messages import LoadGossip, LoadReport
from repro.core.policy import ChildLoad, Decision
from repro.core.runtime.context import ServerContext
from repro.core.runtime.lifecycle import Lifecycle
from repro.net.message import Message


class LoadMonitor:
    """Consumes load traffic and drives the split/reclaim policy."""

    def __init__(self, ctx: ServerContext, lifecycle: Lifecycle) -> None:
        self._ctx = ctx
        self._lifecycle = lifecycle

    def on_load_report(self, message: Message) -> None:
        ctx = self._ctx
        report: LoadReport = message.payload
        if ctx.dying:
            return
        ctx.client_count = report.client_count
        if ctx.parent is not None:
            gossip = LoadGossip(
                server=ctx.name,
                client_count=report.client_count,
                has_children=bool(ctx.children),
                timestamp=ctx.now,
            )
            ctx.send(
                ctx.parent,
                "matrix.gossip",
                gossip,
                size_bytes=ctx.config.wire.load_report_bytes,
            )
        decision = ctx.policy.on_load_report(
            ctx.now, report.client_count, self.youngest_child_load(), ctx.busy
        )
        if decision is Decision.SPLIT:
            self._lifecycle.begin_split()
        elif decision is Decision.RECLAIM:
            self._lifecycle.begin_reclaim()

    def youngest_child_load(self) -> ChildLoad | None:
        """Latest gossiped load of the youngest child (None = unknown)."""
        ctx = self._ctx
        if not ctx.children:
            return None
        child = ctx.children[-1]
        return ctx.child_loads.get(child.matrix_name)

    def on_gossip(self, message: Message) -> None:
        ctx = self._ctx
        gossip: LoadGossip = message.payload
        for child in ctx.children:
            if child.matrix_name == gossip.server:
                ctx.child_loads[gossip.server] = ChildLoad(
                    client_count=gossip.client_count,
                    has_children=gossip.has_children,
                    born_at=child.born_at,
                    reported_at=gossip.timestamp,
                )
                return
