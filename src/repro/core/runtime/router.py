"""Data-plane routing: O(1) overlap-table forwarding (§3.1, §3.2.3).

The router owns the overlap tables the MC pushes and the two per-packet
paths: a spatially tagged packet from the co-located game server is
looked up in the table and forwarded to its consistency set, and a
forward arriving from a peer is range-verified and handed to the local
game server.
"""

from __future__ import annotations

from repro.core.messages import DeliverPacket, SetRange, SpatialPacket
from repro.core.runtime.context import ServerContext
from repro.geometry import RegionIndex
from repro.net.message import Message


class SpatialRouter:
    """Per-packet forwarding plus overlap-table installation."""

    def __init__(self, ctx: ServerContext) -> None:
        self._ctx = ctx

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def on_spatial(self, message: Message) -> None:
        """Route a tagged packet from the local game server (§3.1)."""
        ctx = self._ctx
        packet: SpatialPacket = message.payload
        table = ctx.table_for(packet.radius)
        if table is None:
            # Single-server game (or table not yet received): no peers.
            ctx.stats.local_only_packets += 1
            return
        point = packet.route_point()
        targets: set[str] = set()
        consistency = table.lookup_or_none(point)
        if consistency is not None:
            targets.update(consistency)
        else:
            # The client has not been redirected yet (split in
            # progress): hand the packet to the partition owner.
            owner = ctx.owner_of(point)
            if owner is not None and owner != ctx.name:
                ctx.stats.misrouted_packets += 1
                targets.add(owner)
        if packet.dest is not None and not ctx.partition.contains(packet.dest):
            # Packet explicitly addressed to a remote point (projectile
            # impact, targeted ability): its owner must process it too.
            owner = ctx.owner_of(packet.dest)
            if owner is not None and owner != ctx.name:
                targets.add(owner)
        # Sorted iteration: consistency sets are hash-ordered sets of
        # server names, and send order decides which network-latency
        # draw each forward gets.  Sorting makes figure outputs
        # identical across processes regardless of PYTHONHASHSEED.
        for peer in sorted(targets):
            ctx.send(peer, "matrix.forward", packet, size_bytes=message.size_bytes)
            ctx.stats.forwarded_packets += 1

    def on_forward(self, message: Message) -> None:
        """A packet from a peer: verify its range, pass to the game
        server (§3.2.3: 'after verifying the packet's range')."""
        ctx = self._ctx
        packet: SpatialPacket = message.payload
        radius = (
            packet.radius
            if packet.radius is not None
            else ctx.config.visibility_radius
        )
        reach = ctx.metric.expand_rect(ctx.partition, radius)
        relevant = reach.contains_closed(packet.route_point()) or (
            packet.dest is not None and ctx.partition.contains(packet.dest)
        )
        if not relevant:
            ctx.stats.stale_forwards += 1
            return
        ctx.stats.delivered_packets += 1
        ctx.send(
            ctx.game_server,
            "matrix.deliver",
            DeliverPacket(packet=packet),
            size_bytes=message.size_bytes,
        )

    # ------------------------------------------------------------------
    # Table installation
    # ------------------------------------------------------------------
    def on_table(self, message: Message) -> None:
        """Install a pushed overlap-table update (stale pushes dropped)."""
        ctx = self._ctx
        update = message.payload
        if update.version <= ctx.table_version:
            return  # stale push ordering
        ctx.table_version = update.version
        ctx.partition = update.partition
        ctx.default_radius = update.default_radius
        perf = ctx.perf
        if perf is not None:
            perf.counter("runtime.table_installs").inc()
        ctx.tables = {
            radius: RegionIndex(update.partition, cells, perf=perf)
            for radius, cells in update.tables.items()
        }
        ctx.partitions = update.partitions
        ctx.owner_index = None  # partitioning changed: rebuilt on demand
        ctx.directory = update.game_servers
        ctx.server_map = update.server_map
        directive = SetRange(
            partition=update.partition, directory=dict(ctx.directory)
        )
        size = (
            len(ctx.directory) * ctx.config.wire.directory_entry_bytes
            + ctx.config.wire.control_bytes
        )
        ctx.send(ctx.game_server, "gs.set_range", directive, size_bytes=size)
