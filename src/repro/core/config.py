"""Configuration for a Matrix deployment.

All tunables referenced in the paper live here with the paper's values
as defaults: a server is *overloaded* at 300+ clients and *underloaded*
below 150 (Fig 2 caption), game servers report load periodically
(§3.2.2), and splits/reclamations are damped by "simple heuristics ...
to prevent oscillations" (§3.2.3), expressed as cool-downs and
consecutive-report requirements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect


@dataclass(slots=True)
class LoadPolicyConfig:
    """Thresholds and hysteresis for split/reclaim decisions."""

    #: Client count at which a game server counts as overloaded (paper: 300).
    overload_clients: int = 300
    #: Client count below which a game server counts as underloaded (paper: 150).
    underload_clients: int = 150
    #: Seconds between game-server load reports.
    report_interval: float = 1.0
    #: Overload must persist for this many consecutive reports before a split.
    consecutive_overload_reports: int = 2
    #: Underload (parent *and* child, merged fit included) must persist
    #: for this many consecutive reports before a reclaim; filters the
    #: transient dips a milling hotspot produces.
    consecutive_underload_reports: int = 5
    #: Minimum seconds between two splits by the same server.
    split_cooldown: float = 4.0
    #: Minimum seconds between two reclamations by the same server.
    reclaim_cooldown: float = 8.0
    #: A child must have lived this long before it can be reclaimed.
    min_child_lifetime: float = 10.0
    #: Reclaim only if (parent + child) clients <= factor * overload_clients.
    #: 0.6 leaves the merged server at most at 60% of the overload
    #: threshold, so a reclaim can never immediately trigger a re-split.
    reclaim_combined_factor: float = 0.6
    #: Backoff after a *failed* attempt (pool-exhausted split, nacked
    #: reclaim, chaos abort).  Failures restore the success cooldown
    #: they would otherwise have consumed and wait this long instead.
    #: ``None`` reuses the corresponding cooldown, which preserves the
    #: historical retry timing while still fixing the miscounted stats.
    failed_attempt_backoff: float | None = None

    def effective_failed_split_backoff(self) -> float:
        """Seconds a failed split suppresses the next split attempt."""
        if self.failed_attempt_backoff is not None:
            return self.failed_attempt_backoff
        return self.split_cooldown

    def effective_failed_reclaim_backoff(self) -> float:
        """Seconds a failed reclaim suppresses the next reclaim attempt."""
        if self.failed_attempt_backoff is not None:
            return self.failed_attempt_backoff
        return self.reclaim_cooldown

    def scaled(
        self,
        factor: float,
        floor_overload: int = 4,
        floor_underload: int = 2,
    ) -> "LoadPolicyConfig":
        """Thresholds scaled for a population scaled by *factor*.

        Scaling population and thresholds by the same factor preserves
        the split/reclaim dynamics while cutting the event count by
        ~1/factor; the floors keep tiny test populations from
        degenerating to a 1-client threshold.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        from dataclasses import replace

        return replace(
            self,
            overload_clients=max(
                floor_overload, int(self.overload_clients * factor)
            ),
            underload_clients=max(
                floor_underload, int(self.underload_clients * factor)
            ),
        )

    def __post_init__(self) -> None:
        if self.underload_clients >= self.overload_clients:
            raise ValueError(
                "underload threshold must be below overload threshold"
            )
        if self.report_interval <= 0:
            raise ValueError("report_interval must be positive")
        if self.consecutive_overload_reports < 1:
            raise ValueError("need at least one overload report")
        if not 0.0 < self.reclaim_combined_factor <= 1.0:
            raise ValueError("reclaim_combined_factor must be in (0, 1]")
        if (
            self.failed_attempt_backoff is not None
            and self.failed_attempt_backoff < 0
        ):
            raise ValueError("failed_attempt_backoff must be non-negative")


@dataclass(slots=True)
class WireConfig:
    """Byte sizes of protocol messages (for bandwidth accounting)."""

    #: Fixed overhead added to every spatially tagged game packet.
    spatial_tag_bytes: int = 24
    #: Load report payload.
    load_report_bytes: int = 32
    #: Per-cell cost of an overlap-table update.
    table_cell_bytes: int = 40
    #: Per-entry cost of the game-server directory piggybacked on tables.
    directory_entry_bytes: int = 24
    #: Control messages (register, split grants, reclaim handshakes).
    control_bytes: int = 64
    #: Bytes per transferred map object during a split/reclaim.
    state_object_bytes: int = 200
    #: Chunk size for bulk state transfer.
    state_chunk_bytes: int = 65536


@dataclass(slots=True)
class MiddlewareConfig:
    """Opt-in middleware pipeline stages installed on Matrix servers.

    Cross-cutting concerns ride the pipeline instead of being edits to
    the router: per-kind traffic metrics, aggregation of same-
    destination spatial forwards within a tick, and drop/duplicate
    fault injection for robustness experiments.
    """

    #: Aggregate same-destination ``matrix.forward`` packets per window.
    batch_spatial_forwards: bool = False
    #: Batching flush window in seconds (one game tick by default).
    batch_window: float = 0.05
    #: Wire overhead of one aggregated batch message.
    batch_header_bytes: int = 16
    #: Keep per-kind inbound/outbound counters on every Matrix server.
    kind_metrics: bool = False
    #: Probability of dropping an outbound fault-injected kind.
    fault_drop_rate: float = 0.0
    #: Probability of duplicating an outbound fault-injected kind.
    fault_duplicate_rate: float = 0.0
    #: Message kinds subject to fault injection.
    fault_kinds: tuple = ("matrix.forward",)
    #: Seed for the per-server fault-injection RNG streams.
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_window <= 0:
            raise ValueError("batch_window must be positive")
        if self.batch_header_bytes < 0:
            raise ValueError("batch_header_bytes must be non-negative")
        for rate in (self.fault_drop_rate, self.fault_duplicate_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate out of [0, 1]: {rate}")


@dataclass(slots=True)
class PerfConfig:
    """Opt-in perf instrumentation (see :mod:`repro.perf`).

    Off by default and free when off: the kernel picks an entirely
    uninstrumented event loop, and every other hook site guards on a
    ``perf is not None`` check that is never taken.
    """

    #: Master switch; when False no :class:`~repro.perf.PerfRegistry`
    #: is created at all.
    enabled: bool = False
    #: Sample one kernel step's wall latency out of every N steps.
    #: 1 = time every event (accurate, intrusive); the default keeps
    #: the instrumented loop within a few percent of the plain one.
    step_sample_every: int = 64
    #: Cap on raw duration samples kept per timer (for percentiles).
    timer_max_samples: int = 65536

    def __post_init__(self) -> None:
        if self.step_sample_every < 1:
            raise ValueError("step_sample_every must be >= 1")
        if self.timer_max_samples < 0:
            raise ValueError("timer_max_samples must be non-negative")

    def build_registry(self):
        """A :class:`~repro.perf.PerfRegistry`, or None when disabled."""
        if not self.enabled:
            return None
        from repro.perf import PerfRegistry  # local: keep config light

        return PerfRegistry(
            step_sample_every=self.step_sample_every,
            timer_max_samples=self.timer_max_samples,
        )


@dataclass(slots=True)
class MatrixConfig:
    """Top-level configuration of a Matrix deployment."""

    #: The full game world.
    world: Rect = field(default_factory=lambda: Rect(0.0, 0.0, 1000.0, 1000.0))
    #: The game's radius of visibility (world units).
    visibility_radius: float = 50.0
    #: Exception radii (§3.1): "The Matrix API does allow game servers
    #: to specify different visibility radii for exceptions, and
    #: internally creates distinct sets of overlap regions, each for a
    #: different R."  One extra overlap table is maintained per entry.
    extra_radii: tuple = ()
    #: Distance metric name (see :mod:`repro.geometry.metrics`).
    metric_name: str = "euclidean"
    #: Split strategy name (see :mod:`repro.core.splitting`).
    split_strategy: str = "split-to-left"
    #: Load policy knobs.
    policy: LoadPolicyConfig = field(default_factory=LoadPolicyConfig)
    #: Wire-format sizes.
    wire: WireConfig = field(default_factory=WireConfig)
    #: Opt-in middleware pipeline stages (batching, metrics, faults).
    middleware: MiddlewareConfig = field(default_factory=MiddlewareConfig)
    #: Opt-in perf instrumentation (counters/timers/samplers).
    perf: PerfConfig = field(default_factory=PerfConfig)
    #: Matrix-server routing capacity (packets/second serviced).
    matrix_service_rate: float = 20000.0
    #: Seconds to provision a server host from the pool.
    pool_acquire_delay: float = 1.0
    #: Fixed startup time of a freshly spawned game+Matrix server pair.
    server_spawn_delay: float = 1.5
    #: Watchdog for in-flight splits/reclaims: an operation older than
    #: this is aborted and rolled back (host released, policy backed
    #: off).  ``None`` disables the watchdogs — the default, because a
    #: peer can only go silent mid-protocol when faults are injected;
    #: the chaos driver arms this when it arms a scenario.
    lifecycle_timeout: float | None = None
    #: Density of transferable map objects (objects per world-area unit).
    map_object_density: float = 0.005

    def __post_init__(self) -> None:
        if self.visibility_radius < 0:
            raise ValueError("visibility radius must be non-negative")
        for radius in (self.visibility_radius, *self.extra_radii):
            if radius * 2 >= min(self.world.width, self.world.height):
                raise ValueError(
                    "visibility radius too large relative to the world; "
                    "localized consistency degenerates to global consistency"
                )
        if any(radius <= 0 for radius in self.extra_radii):
            raise ValueError("extra radii must be positive")
        if self.matrix_service_rate <= 0:
            raise ValueError("matrix_service_rate must be positive")
