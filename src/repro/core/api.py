"""The developer-facing Matrix API (§2.1, §3.2.2).

A game server integrates with Matrix through a :class:`MatrixPort`: a
small library object owned by the game-server process.  The port hides
every Matrix mechanism behind four calls —

* :meth:`MatrixPort.send_spatial` — tag a game packet with the spatial
  coordinates of its origin and hand it to Matrix for consistency
  propagation;
* :meth:`MatrixPort.report_load` — periodic load report;
* :meth:`MatrixPort.query_consistency` — the rare non-proximal lookup;
* :meth:`MatrixPort.handle` — called from the game server's message
  handler; consumes Matrix traffic and invokes the two callbacks
  (``on_deliver`` for remote packets, ``on_set_range`` for map-range
  directives).

This is the "clean layering that hides the consistency maintenance
details" — the game never learns which peer servers exist.
"""

from __future__ import annotations

import itertools
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.core.messages import (
    ConsistencyQuery,
    DeliverPacket,
    LoadReport,
    SetRange,
    SpatialPacket,
)
from repro.geometry import Rect, Vec2
from repro.net.message import Message
from repro.net.node import Node

#: kind -> MatrixPort handler-method name: the single source of truth
#: for the traffic a port consumes.
_PORT_HANDLERS = {
    "matrix.deliver": "_handle_deliver",
    "gs.set_range": "_handle_set_range",
    "gs.query_reply": "_handle_query_reply",
}

#: The message kinds a MatrixPort consumes.  Game servers route these
#: to :meth:`MatrixPort.handle` (``@handles(*PORT_KINDS)``).
PORT_KINDS = tuple(_PORT_HANDLERS)


@runtime_checkable
class GameServerHandle(Protocol):
    """What the Matrix fabric needs from a game-server implementation.

    Game servers are otherwise opaque to Matrix (separation of
    concerns); these members exist so the deployment can create, bind
    and introspect them.
    """

    name: str

    def bind_matrix(self, matrix_name: str, partition: Rect) -> None:
        """Attach to a Matrix server and adopt an initial map range."""

    @property
    def client_count(self) -> int:
        """Number of clients currently homed on this server."""

    def client_positions(self) -> Sequence[Vec2]:
        """Positions of the homed clients (read at split time only)."""


class MatrixPort:
    """Game-server-side Matrix integration library."""

    _query_ids = itertools.count(1)

    def __init__(
        self,
        owner: Node,
        visibility_radius: float,
        spatial_tag_bytes: int = 24,
        load_report_bytes: int = 32,
        control_bytes: int = 64,
    ) -> None:
        self._owner = owner
        self._radius = visibility_radius
        self._tag_bytes = spatial_tag_bytes
        self._report_bytes = load_report_bytes
        self._control_bytes = control_bytes
        self._matrix_name: str | None = None
        self._pending_queries: dict[int, Callable[[frozenset], None]] = {}
        # The port's own little dispatch table, derived from the one
        # authoritative kind list.
        self._handlers: dict[str, Callable[[Message], None]] = {
            kind: getattr(self, name) for kind, name in _PORT_HANDLERS.items()
        }
        #: Called with a :class:`SpatialPacket` from a peer's region.
        self.on_deliver: Callable[[SpatialPacket], None] | None = None
        #: Called with a :class:`SetRange` directive.
        self.on_set_range: Callable[[SetRange], None] | None = None
        self.sent_spatial = 0
        self.delivered_remote = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def bound(self) -> bool:
        """True once attached to a Matrix server."""
        return self._matrix_name is not None

    @property
    def matrix_name(self) -> str | None:
        """Name of the attached Matrix server."""
        return self._matrix_name

    @property
    def visibility_radius(self) -> float:
        """The radius this game registered with Matrix."""
        return self._radius

    def bind(self, matrix_name: str) -> None:
        """Attach to Matrix server *matrix_name*."""
        self._matrix_name = matrix_name

    # ------------------------------------------------------------------
    # Outbound (game server → Matrix)
    # ------------------------------------------------------------------
    def send_spatial(
        self,
        origin: Vec2,
        payload: object,
        payload_bytes: int,
        dest: Vec2 | None = None,
        client_id: str = "",
        radius: float | None = None,
    ) -> SpatialPacket:
        """Tag a game packet with coordinates and forward it to Matrix.

        This is the §3.1 contract: the game merely forwards packets
        "appropriately tagged with the spatial coordinates ... of the
        packet's origin and destination" to its local Matrix server.
        *radius* selects a §3.1 exception visibility radius (must be
        one of the ``extra_radii`` the deployment was configured with);
        ``None`` uses the game's default.
        """
        if not self.bound:
            raise RuntimeError("MatrixPort not bound to a Matrix server")
        packet = SpatialPacket(
            origin=origin,
            dest=dest,
            payload=payload,
            source_server=self._owner.name,
            client_id=client_id,
            created_at=self._owner.sim.now,
            radius=radius,
        )
        self._owner.send(
            self._matrix_name,
            "game.spatial",
            packet,
            size_bytes=payload_bytes + self._tag_bytes,
        )
        self.sent_spatial += 1
        return packet

    def report_load(self, client_count: int, queue_length: int) -> None:
        """Send the periodic load report (§3.2.2)."""
        if not self.bound:
            raise RuntimeError("MatrixPort not bound to a Matrix server")
        report = LoadReport(
            client_count=client_count,
            queue_length=queue_length,
            timestamp=self._owner.sim.now,
        )
        self._owner.send(
            self._matrix_name,
            "matrix.load",
            report,
            size_bytes=self._report_bytes,
        )

    def query_consistency(
        self, point: Vec2, callback: Callable[[frozenset], None]
    ) -> None:
        """Resolve the consistency set of a *non-proximal* point.

        Used for the uncommon long-range interactions (§3.2.4); the
        answer (a frozenset of game-server names) arrives via
        *callback* after a Matrix-server → MC round trip.
        """
        if not self.bound:
            raise RuntimeError("MatrixPort not bound to a Matrix server")
        request_id = next(self._query_ids)
        self._pending_queries[request_id] = callback
        query = ConsistencyQuery(
            point=point, exclude="", request_id=request_id
        )
        self._owner.send(
            self._matrix_name,
            "matrix.query",
            query,
            size_bytes=self._control_bytes,
        )

    # ------------------------------------------------------------------
    # Inbound (Matrix → game server)
    # ------------------------------------------------------------------
    @property
    def kinds(self) -> frozenset[str]:
        """The message kinds this port consumes."""
        return frozenset(self._handlers)

    def handle(self, message: Message) -> bool:
        """Consume Matrix-originated messages; returns True if consumed.

        Game servers route these kinds here (via their dispatch table or
        by calling this first) and keep game logic for the rest — the
        entirety of the "relatively simple modifications to the server
        code" the paper's conclusion mentions.
        """
        handler = self._handlers.get(message.kind)
        if handler is None:
            return False
        handler(message)
        return True

    def _handle_deliver(self, message: Message) -> None:
        deliver: DeliverPacket = message.payload
        self.delivered_remote += 1
        if self.on_deliver is not None:
            self.on_deliver(deliver.packet)

    def _handle_set_range(self, message: Message) -> None:
        if self.on_set_range is not None:
            self.on_set_range(message.payload)

    def _handle_query_reply(self, message: Message) -> None:
        reply = message.payload
        callback = self._pending_queries.pop(reply.request_id, None)
        if callback is not None:
            callback(reply.servers)
