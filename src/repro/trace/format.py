"""The versioned client-stream trace format (JSONL).

A trace is the *client-visible event stream* of one scenario run: every
message a client sent or was sent, in canonical order.  Two builds that
produce byte-identical traces for the same (scenario, seed) served the
same workload the same way — which is what makes traces the regression
currency of ``python -m repro record`` / ``replay`` / ``diff``.

File layout (one JSON document per line):

* line 1 — the header object::

      {"format": "repro-trace", "version": 1, "scenario": "...",
       "backend": "matrix", "game": "bzflag", "seed": 1, "scale": 0.1,
       "duration": 60.0, "events": 1234, "digest": "sha256:..."}

* lines 2..N+1 — one event per line, a compact array::

      [t, src, dst, kind, size_bytes]

Canonical event order is ``(t, src, dst, kind, size)``: identical
tuples are interchangeable, so the order is independent of shard count
and executor interleaving.  ``digest`` is the SHA-256 of the canonical
event lines; it is verified on read, so truncated or edited files fail
loudly instead of diffing quietly.

Versioning: ``TRACE_VERSION`` bumps whenever the event tuple shape or
the canonical order changes.  Readers reject newer-versioned files with
a clear error (forward compatibility is not attempted); older versions
are listed in ``SUPPORTED_VERSIONS`` for as long as they can still be
decoded.  Nothing wall-clock-dependent is ever written — recording the
same build twice must produce byte-identical files.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable

FORMAT_NAME = "repro-trace"
TRACE_VERSION = 1
SUPPORTED_VERSIONS = (1,)

#: One client-visible event: (t, src, dst, kind, size_bytes).
TraceEvent = tuple[float, str, str, str, int]


class TraceError(ValueError):
    """A trace file could not be read or fails its integrity checks."""


class TraceCompatibilityError(TraceError):
    """A trace is valid but incompatible with the requested replay."""


@dataclass(frozen=True)
class TraceHeader:
    """The metadata line of one trace file."""

    scenario: str
    backend: str
    game: str
    seed: int
    scale: float
    duration: float
    events: int
    digest: str
    version: int = TRACE_VERSION

    def describe(self) -> str:
        """One line: what this trace is, at a glance."""
        return (
            f"{self.scenario} on {self.backend} (game={self.game}, "
            f"seed={self.seed}, scale={self.scale:g}, "
            f"duration={self.duration:g}s, {self.events} events)"
        )


def canonical_events(events: Iterable[TraceEvent]) -> list[TraceEvent]:
    """Sort *events* into the canonical trace order.

    The sort key is the full event tuple, so equal events are
    interchangeable and the result is identical whatever execution
    order (serial kernel, N shard lanes, thread executor) produced the
    stream.
    """
    return sorted(events)


def _event_line(event: TraceEvent) -> str:
    return json.dumps(list(event), separators=(",", ":"))


def events_digest(events: Iterable[TraceEvent]) -> str:
    """The ``sha256:...`` digest of the canonical event lines."""
    hasher = hashlib.sha256()
    for event in events:
        hasher.update(_event_line(event).encode())
        hasher.update(b"\n")
    return f"sha256:{hasher.hexdigest()}"


def write_trace(
    path: str | Path, header: TraceHeader, events: list[TraceEvent]
) -> Path:
    """Write one trace file; *events* must already be canonical.

    The header's ``events``/``digest`` fields are recomputed here so a
    written file is always self-consistent.
    """
    path = Path(path)
    header = TraceHeader(
        **{
            **asdict(header),
            "events": len(events),
            "digest": events_digest(events),
        }
    )
    lines = [json.dumps({"format": FORMAT_NAME, **asdict(header)},
                        sort_keys=True)]
    lines.extend(_event_line(event) for event in events)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n")
    return path


def _parse_header(line: str, path: Path) -> TraceHeader:
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: header line is not JSON: {exc}") from None
    if not isinstance(raw, dict) or raw.get("format") != FORMAT_NAME:
        raise TraceError(
            f"{path}: not a {FORMAT_NAME} file (header {line[:60]!r})"
        )
    version = raw.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise TraceError(
            f"{path}: trace format version {version!r} is not supported "
            f"by this build (supported: {list(SUPPORTED_VERSIONS)}); "
            "re-record the trace with this build"
        )
    raw.pop("format")
    try:
        return TraceHeader(**raw)
    except TypeError as exc:
        raise TraceError(f"{path}: malformed trace header: {exc}") from None


def read_trace(path: str | Path) -> tuple[TraceHeader, list[TraceEvent]]:
    """Read and integrity-check one trace file.

    Verifies the declared event count and the canonical digest; a file
    that was truncated, hand-edited or produced by a different build of
    the *recorder* (not the system under test) fails here with a clear
    error instead of producing a misleading diff downstream.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from None
    if not lines:
        raise TraceError(f"{path}: empty file is not a trace")
    header = _parse_header(lines[0], path)
    events: list[TraceEvent] = []
    for number, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        try:
            t, src, dst, kind, size = json.loads(line)
        except (json.JSONDecodeError, ValueError) as exc:
            raise TraceError(
                f"{path}:{number}: malformed event line: {exc}"
            ) from None
        events.append((float(t), str(src), str(dst), str(kind), int(size)))
    if len(events) != header.events:
        raise TraceError(
            f"{path}: header declares {header.events} events but the "
            f"file holds {len(events)} (truncated?)"
        )
    digest = events_digest(events)
    if digest != header.digest:
        raise TraceError(
            f"{path}: event digest mismatch (header {header.digest}, "
            f"file {digest}); the file was modified after recording"
        )
    return header, events
