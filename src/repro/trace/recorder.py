"""Recording the client-visible stream of a live run.

The recorder subscribes to the network's send-side stats tap
(:meth:`repro.net.network.Network.add_tap`) and keeps every message a
client sent or received.  Buffered events are canonically re-ordered on
read (see :func:`repro.trace.format.canonical_events`), so the recorded
trace is identical whatever executor, ``--jobs`` or ``--shards``
configuration produced the run — the property the trace-determinism
tests pin.

:func:`record_scenario` is the one-call form: it runs a scenario
through :func:`repro.harness.runner.run_scenario` with a recorder
attached via the runner's ``observe`` hook and returns the outcome
together with the finished trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.net.message import Message
from repro.net.stats import TrafficStats
from repro.trace.format import (
    TraceEvent,
    TraceHeader,
    canonical_events,
    events_digest,
    write_trace,
)

#: Node-name prefix that marks the client side of the stream.  Every
#: fleet spawns ``client.N`` nodes (see ClientFleet), so this is the
#: boundary between "what players experienced" and server internals.
CLIENT_PREFIX = "client."


class TraceRecorder:
    """Buffers the client-visible messages of one attached network."""

    def __init__(self, network, prefix: str = CLIENT_PREFIX) -> None:
        self._network = network
        self._prefix = prefix
        self._buffer: list[TraceEvent] = []
        network.add_tap(self._tap)

    def _tap(self, message: Message) -> None:
        if message.src.startswith(self._prefix) or message.dst.startswith(
            self._prefix
        ):
            # Tuple append only: lane threads may call concurrently
            # under the sharded thread executor; canonical ordering is
            # restored on read, never relied on here.
            self._buffer.append(
                (
                    message.sent_at,
                    message.src,
                    message.dst,
                    message.kind,
                    message.size_bytes,
                )
            )

    def detach(self) -> None:
        """Stop recording (idempotent)."""
        self._network.remove_tap(self._tap)

    def events(self) -> list[TraceEvent]:
        """The recorded stream in canonical trace order."""
        return canonical_events(self._buffer)

    def digest(self) -> str:
        """Canonical digest of the recorded stream."""
        return events_digest(self.events())

    def stats(self) -> TrafficStats:
        """The recorded stream folded into a :class:`TrafficStats`.

        This is the object replay reproduces: replaying a trace and
        comparing ``canonical_digest()`` against this one is the
        bit-identity check of the round-trip tests.
        """
        stats = TrafficStats()
        for t, src, dst, kind, size in self.events():
            stats.record(
                Message(src=src, dst=dst, kind=kind, payload=None,
                        size_bytes=size)
            )
        return stats


@dataclass
class RecordedRun:
    """A finished run plus its recorded trace."""

    outcome: object  # ScenarioOutcome
    header: TraceHeader
    events: list[TraceEvent]

    def write(self, path: str | Path) -> Path:
        """Persist the trace as a versioned JSONL file."""
        return write_trace(path, self.header, self.events)


def record_scenario(
    scenario,
    backend: str = "matrix",
    profile=None,
    scale: float = 1.0,
    preview: float | None = None,
    seed: int = 0,
    **options,
) -> RecordedRun:
    """Run *scenario* on *backend* with the trace recorder attached.

    Accepts exactly what :func:`repro.harness.runner.run_scenario`
    does; the recorder rides the runner's ``observe`` hook so it taps
    the network after the experiment is wired but before the first
    event runs.
    """
    from repro.harness.runner import run_scenario  # local: no cycle

    recorders: list[TraceRecorder] = []

    def observe(experiment) -> None:
        recorders.append(TraceRecorder(experiment.network))

    outcome = run_scenario(
        scenario,
        backend=backend,
        profile=profile,
        scale=scale,
        preview=preview,
        seed=seed,
        observe=observe,
        **options,
    )
    recorder = recorders[0]
    recorder.detach()
    events = recorder.events()
    header = TraceHeader(
        scenario=outcome.scenario.name,
        backend=backend,
        game=outcome.scenario.game,
        seed=seed,
        scale=scale,
        duration=outcome.scenario.duration,
        events=len(events),
        digest=events_digest(events),
    )
    return RecordedRun(outcome=outcome, header=header, events=events)
