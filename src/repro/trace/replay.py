"""Trace replay: a recorded client stream as a first-class backend.

Replaying re-sends every recorded client-visible message through a
fresh simulated network of stub endpoints, at its recorded simulation
time, with its recorded ``(src, dst, kind, size)``.  The replayed run's
:class:`~repro.net.stats.TrafficStats` therefore reproduces the
recorded stream exactly — ``result.traffic.canonical_digest()`` equals
the digest of the trace events — which is what lets two builds be
regression-diffed on byte-identical workloads.

The backend registers as ``"replay"`` with the unified runner (the
import at the bottom of :mod:`repro.harness.runner` triggers it), so a
trace runs through the same ``run_scenario`` front door as every
simulated architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.baselines.backend import BackendInfo
from repro.harness.runner import scenario_backend
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.net.stats import TrafficStats
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.trace.format import (
    TraceCompatibilityError,
    TraceEvent,
    TraceHeader,
    read_trace,
)
from repro.workload.scenarios.spec import Scenario

#: Slack appended to the replay horizon so in-flight deliveries drain.
_DRAIN = 1.0


class ReplayEndpoint(Node):
    """A stub host: accepts any delivery, originates nothing itself."""


@dataclass
class ReplayResult:
    """What one replay produced (shaped like the sim results the
    harness reads: ``traffic``, ``events_processed``, latency lists)."""

    profile_name: str
    duration: float
    traffic: TrafficStats
    events_processed: int
    replayed_messages: int
    endpoints: int
    recorded_digest: str
    recorded_stats_digest: str
    action_latencies: list[float] = field(default_factory=list)
    dropped_packets: int = 0

    def max_queue(self) -> float:
        return 0.0

    @property
    def servers_used(self) -> int:
        return self.endpoints

    def digest(self) -> str:
        """Canonical digest of the replayed traffic."""
        return self.traffic.canonical_digest()

    @property
    def matches_recording(self) -> bool:
        """True when the replayed traffic equals the recorded stream.

        Stub endpoints originate nothing of their own, so the replayed
        network's stats must fold to exactly the trace's events; a
        mismatch means the fabric itself drifted between builds.
        """
        return self.digest() == self.recorded_stats_digest


def stats_of_events(events: "list[TraceEvent]") -> TrafficStats:
    """Fold trace *events* into a fresh :class:`TrafficStats`.

    This is the comparison object of the round-trip identity: the
    recorded stream, accounted exactly as the live network would have
    accounted it.
    """
    stats = TrafficStats()
    for _t, src, dst, kind, size in events:
        stats.record(
            Message(src=src, dst=dst, kind=kind, payload=None,
                    size_bytes=size)
        )
    return stats


class ReplayExperiment:
    """A wired replay: stub endpoints + the recorded send schedule."""

    def __init__(self, header: TraceHeader, events: list[TraceEvent]) -> None:
        self.header = header
        self.events = events
        self.rng = RngRegistry(seed=header.seed)
        self.sim = Simulator()
        self.network = Network(self.sim, rng=self.rng.stream("network"))
        self.chaos = None
        names = sorted(
            {event[1] for event in events} | {event[2] for event in events}
        )
        self._endpoints = {
            name: self.network.add_node(ReplayEndpoint(name))
            for name in names
        }
        for event in events:
            self.sim.at(event[0], self._send, arg=event)

    def _send(self, event: TraceEvent) -> None:
        _, src, dst, kind, size = event
        self._endpoints[src].send(dst, kind, None, size_bytes=size)

    def run(self, until: float) -> ReplayResult:
        horizon = until
        if self.events:
            horizon = max(horizon, self.events[-1][0])
        self.sim.run(until=horizon + _DRAIN)
        return ReplayResult(
            profile_name=self.header.game,
            duration=self.header.duration,
            traffic=self.network.stats,
            events_processed=self.sim.events_processed,
            replayed_messages=len(self.events),
            endpoints=len(self._endpoints),
            recorded_digest=self.header.digest,
            recorded_stats_digest=stats_of_events(
                self.events
            ).canonical_digest(),
        )


def scenario_from_header(header: TraceHeader) -> Scenario:
    """The inert :class:`Scenario` a trace replays as.

    It passes the spec layer's ``__post_init__`` validation like any
    catalog entry (non-empty name, positive duration) and carries no
    phases — the workload is the recorded stream itself.
    """
    return Scenario(
        name=header.scenario,
        description=f"trace replay: {header.describe()}",
        phases=(),
        # A trace of an empty preview window still needs a valid spec.
        duration=max(header.duration, 1e-9),
        game=header.game,
    )


@scenario_backend(
    "replay",
    info=BackendInfo(
        name="replay",
        ownership="none: stub endpoints re-play a recorded stream",
        routing="verbatim: each recorded message re-sent as recorded",
        consistency="none — the trace is the ground truth",
        summary="trace replay for regression-diffing builds",
    ),
)
def _run_replay(
    scenario: Scenario,
    profile,
    *,
    trace: "tuple[TraceHeader, list[TraceEvent]] | str | Path",
    chaos=None,
    observe=None,
) -> tuple[ReplayResult, ReplayExperiment]:
    if chaos is not None:
        raise ValueError(
            "replay carries no fault phases to arm; record the faulted "
            "run instead and replay its trace"
        )
    if not isinstance(trace, tuple):
        trace = read_trace(trace)
    header, events = trace
    experiment = ReplayExperiment(header, events)
    if observe is not None:
        observe(experiment)
    return experiment.run(until=scenario.duration), experiment


def replay_trace(
    path: str | Path,
    backend: str | None = None,
):
    """Replay the trace at *path*; returns the ``ScenarioOutcome``.

    *backend* is the compatibility assertion: a trace records which
    backend produced it, and replaying a stream recorded on one
    architecture as if another had served it would mis-attribute every
    message — so a mismatch is rejected, not coerced.
    """
    from repro.harness.runner import run_scenario  # already imported

    header, events = read_trace(path)
    if backend is not None and backend != header.backend:
        raise TraceCompatibilityError(
            f"{path} was recorded on backend '{header.backend}' and "
            f"cannot be replayed as '{backend}': the client-visible "
            f"stream embeds that backend's topology. Re-record with "
            f"--backend {backend} to compare against it."
        )
    scenario = scenario_from_header(header)
    return run_scenario(
        scenario,
        backend="replay",
        profile=_replay_profile(header.game),
        trace=(header, events),
    )


def _replay_profile(game: str):
    from repro.games.profile import profile_by_name

    return profile_by_name(game)
