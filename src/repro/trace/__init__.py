"""Trace record/replay: the client-visible stream as a regression artifact.

A *trace* is the canonical, versioned JSONL serialisation of every
message a client sent or received during one scenario run
(:mod:`repro.trace.format`).  Recording (:mod:`repro.trace.recorder`)
taps the live network; replaying (:mod:`repro.trace.replay`) re-runs a
trace as a first-class scenario backend; diffing
(:mod:`repro.trace.diff`) regression-compares two recordings.

Only the leaf modules with no harness dependency are imported here —
``repro.harness.runner`` imports ``repro.trace.replay`` at its bottom
to register the replay backend, and a fat ``__init__`` would turn that
into a cycle.  Import ``recorder``/``replay`` explicitly.
"""

from repro.trace.diff import TraceDiff, diff_traces, format_diff
from repro.trace.format import (
    FORMAT_NAME,
    SUPPORTED_VERSIONS,
    TRACE_VERSION,
    TraceCompatibilityError,
    TraceError,
    TraceEvent,
    TraceHeader,
    canonical_events,
    events_digest,
    read_trace,
    write_trace,
)

__all__ = [
    "FORMAT_NAME",
    "SUPPORTED_VERSIONS",
    "TRACE_VERSION",
    "TraceCompatibilityError",
    "TraceDiff",
    "TraceError",
    "TraceEvent",
    "TraceHeader",
    "canonical_events",
    "diff_traces",
    "events_digest",
    "format_diff",
    "read_trace",
    "write_trace",
]
