"""Regression-diffing two trace files.

``diff_traces`` compares the client-visible streams of two recordings:
same scenario + same seed + same build should produce *identical*
traces, so any difference is a behaviour change to explain.  The
comparison is a multiset diff over canonical events — reordering of
identical tuples can never register as drift, only genuinely different
messages can.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.trace.format import TraceEvent, TraceHeader, read_trace

#: How many concrete example events each side of a drift report shows.
EXAMPLE_LIMIT = 5

#: Header fields whose disagreement makes a diff apples-to-oranges.
_HEADER_FIELDS = (
    "scenario",
    "backend",
    "game",
    "seed",
    "scale",
    "duration",
    "version",
)


@dataclass
class TraceDiff:
    """What differs between two traces (empty == bit-identical)."""

    header_mismatches: dict[str, tuple[object, object]]
    events_a: int
    events_b: int
    only_a: int
    only_b: int
    examples_a: list[TraceEvent] = field(default_factory=list)
    examples_b: list[TraceEvent] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the traces are identical streams of the same run."""
        return (
            not self.header_mismatches
            and self.only_a == 0
            and self.only_b == 0
        )


def diff_headers(
    a: TraceHeader, b: TraceHeader
) -> dict[str, tuple[object, object]]:
    """Fields on which the two headers disagree (``field -> (a, b)``)."""
    return {
        name: (getattr(a, name), getattr(b, name))
        for name in _HEADER_FIELDS
        if getattr(a, name) != getattr(b, name)
    }


def diff_traces(
    path_a: str | Path, path_b: str | Path
) -> TraceDiff:
    """Compare the trace files at *path_a* and *path_b*."""
    header_a, events_a = read_trace(path_a)
    header_b, events_b = read_trace(path_b)
    mismatches = diff_headers(header_a, header_b)
    if header_a.digest == header_b.digest:
        # Digests cover the canonical event lines, so equal digests mean
        # equal streams — skip the multiset walk.
        return TraceDiff(
            header_mismatches=mismatches,
            events_a=len(events_a),
            events_b=len(events_b),
            only_a=0,
            only_b=0,
        )
    counts_a = Counter(events_a)
    counts_a.subtract(events_b)
    only_a = +counts_a  # events over-represented in a
    only_b = -counts_a  # events over-represented in b
    return TraceDiff(
        header_mismatches=mismatches,
        events_a=len(events_a),
        events_b=len(events_b),
        only_a=sum(only_a.values()),
        only_b=sum(only_b.values()),
        examples_a=sorted(only_a.elements())[:EXAMPLE_LIMIT],
        examples_b=sorted(only_b.elements())[:EXAMPLE_LIMIT],
    )


def format_diff(
    diff: TraceDiff, label_a: str = "a", label_b: str = "b"
) -> str:
    """Human-readable report of one :class:`TraceDiff`."""
    if diff.clean:
        return (
            f"traces identical: {diff.events_a} events, no drift "
            f"({label_a} == {label_b})"
        )
    lines = [f"traces differ ({label_a} vs {label_b}):"]
    for name, (value_a, value_b) in sorted(diff.header_mismatches.items()):
        lines.append(f"  header.{name}: {value_a!r} != {value_b!r}")
    if diff.only_a or diff.only_b:
        lines.append(
            f"  events: {diff.events_a} vs {diff.events_b} "
            f"({diff.only_a} only in {label_a}, "
            f"{diff.only_b} only in {label_b})"
        )
        for event in diff.examples_a:
            lines.append(f"    - only {label_a}: {list(event)}")
        for event in diff.examples_b:
            lines.append(f"    - only {label_b}: {list(event)}")
    return "\n".join(lines)
