"""The chaos / fault-tolerance layer.

Scenarios declare faults (:class:`~repro.workload.scenarios.ServerCrash`,
:class:`~repro.workload.scenarios.CoordinatorCrash`,
:class:`~repro.workload.scenarios.LinkDegrade`,
:class:`~repro.workload.scenarios.Recovery`) next to their workload
phases; the :class:`ChaosDriver` here injects them into whichever
backend runs the scenario and collects a :class:`ChaosReport` — what
was injected, how long each crashed partition took to recover, what got
lost on the wire, and whether any pool host leaked.

The unified runner arms a driver automatically for scenarios that
declare faults (``run_scenario(..., chaos="auto")``); plain scenarios
never pay for any of it — no watchdogs, no supervisors, no per-client
liveness checks — which is what keeps fault-free runs event-for-event
identical to the pre-chaos ones.
"""

from repro.chaos.driver import (
    ChaosDriver,
    ChaosOptions,
    ChaosReport,
    FaultRecord,
)

__all__ = [
    "ChaosDriver",
    "ChaosOptions",
    "ChaosReport",
    "FaultRecord",
]
