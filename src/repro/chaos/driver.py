"""The chaos driver: schedules a scenario's faults against a backend.

One driver is armed per run (see
:func:`repro.harness.runner.run_scenario`).  Arming does three things:

1. **Hardening** (matrix backend only): the deployment's host
   supervisor is started (crash detection + partition respawn), the
   lifecycle watchdogs are enabled (in-flight split/reclaim abort), and
   every client gets dead-server detection through the fleet locator.
2. **Scheduling**: each declared fault phase becomes a simulation event
   at its ``at`` time.  Crash faults are matrix-only (the rival
   architectures have no recovery story — which is the comparison);
   link degradation works on every backend through its declared
   fault nodes and consistency kinds.
3. **Accounting**: every injection is recorded, and :meth:`report`
   assembles recovery times, failover latency, lost-packet counts and
   the pool-leak audit into a :class:`ChaosReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.middleware import FaultInjectionStage
from repro.workload.scenarios.spec import (
    CoordinatorCrash,
    FaultPhase,
    LinkDegrade,
    Recovery,
    ServerCrash,
)


@dataclass(frozen=True)
class ChaosOptions:
    """Knobs of one armed chaos run."""

    #: Faults injected on top of the scenario's declared fault phases
    #: (the chaos bench uses this to stress plain scenarios).
    extra_faults: tuple[FaultPhase, ...] = ()
    #: Host-supervisor sweep period (crash-detection latency bound).
    supervisor_interval: float = 0.5
    #: Downtime of a crashed host before its lease returns to the pool.
    host_reboot_delay: float = 2.0
    #: Snapshot silence after which a client relocates and rejoins.
    client_rejoin_timeout: float = 3.0
    #: Age at which an in-flight split/reclaim is aborted and rolled back.
    lifecycle_timeout: float = 6.0


@dataclass
class FaultRecord:
    """What happened to one scheduled fault."""

    fault: str
    at: float
    status: str = "pending"  # injected | skipped | unsupported | pending
    detail: str = ""


@dataclass
class ChaosReport:
    """The resilience read-out of one chaos run."""

    scenario: str
    backend: str
    faults: list[FaultRecord]
    #: Per-crash recovery audit (matrix backend; empty elsewhere).
    recoveries: list = field(default_factory=list)
    #: When the standby MC promoted itself (None = no failover).
    mc_promoted_at: float | None = None
    #: Messages addressed to dead/decommissioned nodes — the traffic
    #: lost while failures were unhealed.
    undeliverable_packets: int = 0
    #: Messages the link-degradation stages dropped / duplicated.
    link_dropped: int = 0
    link_duplicated: int = 0
    #: Clients that detected a dead server and rejoined.
    client_rejoins: int = 0
    #: Pool hosts no live owner can explain (must be empty).
    leaked_hosts: list[str] = field(default_factory=list)

    def recovery_times(self) -> list[float]:
        """Crash-to-reregistration latencies of completed recoveries."""
        return [
            record.recovery_time
            for record in self.recoveries
            if record.recovery_time is not None
        ]

    def all_recovered(self) -> bool:
        """True when every detected crash produced a live replacement."""
        return all(
            record.recovery_time is not None for record in self.recoveries
        )


class ChaosDriver:
    """Schedules fault injection for one scenario run."""

    def __init__(
        self,
        scenario,
        experiment,
        backend: str,
        options: ChaosOptions | None = None,
    ) -> None:
        self._scenario = scenario
        self._experiment = experiment
        self._backend = backend
        self._options = options or ChaosOptions()
        self._faults: tuple[FaultPhase, ...] = (
            tuple(scenario.fault_phases()) + tuple(self._options.extra_faults)
        )
        self._deployment = getattr(experiment, "deployment", None)
        self._is_matrix = backend == "matrix" and hasattr(
            self._deployment, "matrix_servers"
        )
        #: node name -> the chaos-owned fault stage installed on it.
        self._stages: dict[str, FaultInjectionStage] = {}
        #: Degradation windows currently open, in opening order; the
        #: most recent one governs the stages, and closing a window
        #: re-applies the previous one instead of healing everything.
        self._open_windows: list[LinkDegrade] = []
        self.records: list[FaultRecord] = []
        self._armed = False

    @property
    def faults(self) -> tuple[FaultPhase, ...]:
        """Everything this driver will inject."""
        return self._faults

    def has_crash_faults(self) -> bool:
        """True when any scheduled fault kills a node outright.

        Crash faults mutate foreign lanes mid-window, so sharded runs
        refuse them; link degradation (and recovery) is barrier-safe
        and allowed everywhere.
        """
        return any(
            isinstance(fault, (ServerCrash, CoordinatorCrash))
            for fault in self._faults
        )

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Harden the backend and schedule every fault."""
        if self._armed:
            raise RuntimeError("chaos driver already armed")
        self._armed = True
        options = self._options
        sim = self._experiment.sim
        if self._is_matrix:
            deployment = self._deployment
            deployment.enable_crash_recovery(
                check_interval=options.supervisor_interval,
                host_reboot_delay=options.host_reboot_delay,
            )
            deployment.config.lifecycle_timeout = options.lifecycle_timeout
            self._experiment.fleet.enable_rejoin(
                options.client_rejoin_timeout
            )
            deployment.pair_created_hooks.append(self._on_pair_created)
        for fault in self._faults:
            record = FaultRecord(fault=type(fault).__name__, at=fault.at)
            self.records.append(record)
            if isinstance(fault, (ServerCrash, CoordinatorCrash)):
                if not self._is_matrix:
                    record.status = "unsupported"
                    record.detail = (
                        f"{self._backend} has no crash-recovery protocol"
                    )
                    continue
                if isinstance(fault, ServerCrash):
                    sim.at(
                        fault.at,
                        lambda f=fault, r=record: self._inject_crash(f, r),
                    )
                else:
                    sim.at(
                        fault.at,
                        lambda r=record: self._inject_mc_crash(r),
                    )
            elif isinstance(fault, Recovery):
                sim.at(fault.at, lambda r=record: self._inject_recovery(r))
            elif isinstance(fault, LinkDegrade):
                sim.at(
                    fault.at,
                    lambda f=fault, r=record: self._inject_degrade(f, r),
                )
                if fault.duration != float("inf"):
                    end_record = FaultRecord(
                        fault="LinkDegrade.end", at=fault.at + fault.duration
                    )
                    self.records.append(end_record)
                    sim.at(
                        end_record.at,
                        lambda f=fault, r=end_record: self._close_window(
                            f, r
                        ),
                    )
            else:  # pragma: no cover - future fault kinds
                record.status = "unsupported"
                record.detail = "unknown fault phase"

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def _live_servers(self) -> list:
        return [
            server
            for server in self._deployment.matrix_servers.values()
            if not server.dying
        ]

    def _pick_victim(self, rule: str):
        live = self._live_servers()
        if len(live) < 2:
            return None
        if rule == "splitting":
            for server in live:
                if server.lifecycle.split_in_flight:
                    return server
            rule = "youngest"
        if rule == "busiest":
            return max(live, key=lambda s: (s.client_count, s.name))
        if rule == "oldest":
            return live[0]
        return live[-1]

    def _inject_crash(self, fault: ServerCrash, record: FaultRecord) -> None:
        victim = self._pick_victim(fault.victim)
        if victim is None:
            record.status = "skipped"
            record.detail = "fewer than two live servers"
            return
        self._deployment.crash_pair(victim.name)
        record.status = "injected"
        record.detail = victim.name

    def _inject_mc_crash(self, record: FaultRecord) -> None:
        deployment = self._deployment
        if not deployment.network.has_node(deployment.coordinator.name):
            record.status = "skipped"
            record.detail = "primary MC already down"
            return
        deployment.fail_coordinator()
        record.status = "injected"
        record.detail = (
            "standby armed"
            if deployment.standby_coordinator is not None
            else "no standby: repartitioning stays down"
        )

    def _fault_nodes(self) -> list:
        nodes = getattr(self._experiment, "fault_nodes", None)
        return list(nodes()) if nodes is not None else []

    def _default_kinds(self) -> tuple[str, ...]:
        return tuple(getattr(self._experiment, "fault_kinds", ()))

    def _window_settings(
        self, window: LinkDegrade
    ) -> tuple[tuple[str, ...] | None, float, float]:
        kinds = (
            window.kinds if window.kinds is not None else self._default_kinds()
        )
        return (
            tuple(kinds) if kinds else None,
            window.drop_rate,
            window.duplicate_rate,
        )

    def _apply_current_window(self, stage: FaultInjectionStage) -> None:
        """Tune *stage* to the most recent open window (or heal it)."""
        if self._open_windows:
            kinds, drop, duplicate = self._window_settings(
                self._open_windows[-1]
            )
            stage.set_kinds(kinds)
            stage.set_rates(drop, duplicate)
        else:
            stage.set_rates(0.0, 0.0)

    def _stage_on(self, node) -> FaultInjectionStage:
        stage = self._stages.get(node.name)
        if stage is None:
            # One named stream per node from the experiment's registry:
            # deterministic, and isolated from every other component's
            # draws (adding chaos never perturbs the workload RNG).
            stage = FaultInjectionStage(
                rng=self._experiment.rng.stream(f"chaos:{node.name}"),
            )
            node.use(stage)
            self._stages[node.name] = stage
        return stage

    def _on_pair_created(self, matrix_server) -> None:
        """Keep late spawns degraded while a window is open."""
        if self._open_windows:
            self._apply_current_window(self._stage_on(matrix_server))

    def _inject_degrade(self, fault: LinkDegrade, record: FaultRecord) -> None:
        nodes = self._fault_nodes()
        if not nodes:
            record.status = "skipped"
            record.detail = "backend exposes no fault nodes"
            return
        self._open_windows.append(fault)
        for node in nodes:
            self._apply_current_window(self._stage_on(node))
        record.status = "injected"
        record.detail = (
            f"{len(nodes)} nodes, drop={fault.drop_rate:g}, "
            f"dup={fault.duplicate_rate:g}"
        )

    def _close_window(self, fault: LinkDegrade, record: FaultRecord) -> None:
        """A finite window expired: fall back to the one below it."""
        if fault not in self._open_windows:
            record.status = "skipped"
            record.detail = "window already closed by a Recovery"
            return
        self._open_windows.remove(fault)
        for stage in self._stages.values():
            self._apply_current_window(stage)
        record.status = "injected"
        record.detail = (
            f"{len(self._stages)} nodes retuned, "
            f"{len(self._open_windows)} windows still open"
        )

    def _inject_recovery(self, record: FaultRecord) -> None:
        self._open_windows.clear()
        if not self._stages:
            record.status = "skipped"
            record.detail = "no active degradation"
            return
        for stage in self._stages.values():
            stage.set_rates(0.0, 0.0)
        record.status = "injected"
        record.detail = f"{len(self._stages)} nodes healed"

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def report(self) -> ChaosReport:
        """Assemble the resilience read-out (call after the run settles)."""
        experiment = self._experiment
        report = ChaosReport(
            scenario=self._scenario.name,
            backend=self._backend,
            faults=list(self.records),
            undeliverable_packets=experiment.network.undeliverable_count,
            link_dropped=sum(s.dropped for s in self._stages.values()),
            link_duplicated=sum(s.duplicated for s in self._stages.values()),
            client_rejoins=sum(
                client.rejoins for client in experiment.fleet.clients
            ),
        )
        if self._is_matrix:
            deployment = self._deployment
            report.recoveries = list(deployment.crash_recoveries)
            report.leaked_hosts = deployment.unaccounted_hosts()
            standby = deployment.standby_coordinator
            if standby is not None:
                report.mc_promoted_at = standby.promoted_at
        return report
