"""Human-readable rendering of a :class:`PerfRegistry` snapshot.

The ``python -m repro perf`` subcommand prints this report;
``BENCH_perf_suite.json`` persists the underlying snapshot dict
unrendered.  Formatting lives here so the CLI and any future TUI share
one renderer.
"""

from __future__ import annotations

from repro.perf.instruments import PerfRegistry


def format_report(registry: PerfRegistry, title: str = "perf report") -> str:
    """Render every instrument of *registry* as an aligned ASCII table."""
    snapshot = registry.snapshot()
    lines: list[str] = [title, "=" * len(title)]

    counters = snapshot["counters"]
    if counters:
        lines.append("")
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name, data in counters.items():
            value = f"  value={data['value']:g}" if data["value"] else ""
            lines.append(f"  {name:<{width}}  {data['count']:>12}{value}")

    timers = snapshot["timers"]
    if timers:
        lines.append("")
        lines.append(
            f"timers{'':<26} {'calls':>10} {'total':>9} {'mean':>9} "
            f"{'p50':>9} {'p99':>9}"
        )
        for name, data in timers.items():
            lines.append(
                f"  {name:<30} {data['count']:>10} "
                f"{data['total_s']:>8.3f}s "
                f"{data['mean_us']:>7.1f}us "
                f"{data['p50_us']:>7.1f}us "
                f"{data['p99_us']:>7.1f}us"
            )

    samplers = snapshot["samplers"]
    if samplers:
        lines.append("")
        lines.append(
            f"samplers{'':<24} {'samples':>10} {'min':>9} {'mean':>9} "
            f"{'max':>9}"
        )
        for name, data in samplers.items():
            lines.append(
                f"  {name:<30} {data['count']:>10} {data['min']:>9.1f} "
                f"{data['mean']:>9.1f} {data['max']:>9.1f}"
            )

    if len(lines) == 2:
        lines.append("(no instruments fired)")
    return "\n".join(lines)
