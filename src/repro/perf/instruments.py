"""Cheap wall-clock instrumentation for the simulation hot paths.

Three instrument kinds, all owned by one :class:`PerfRegistry`:

* :class:`PerfCounter` — a monotonically increasing event count with an
  optional value accumulator (bytes, cells, cache hits).
* :class:`PerfTimer` — wall-clock duration accounting (count / total /
  min / max plus a bounded reservoir of raw samples for percentiles).
  Timers measure *host* time with :func:`time.perf_counter`; they never
  touch simulation time, so instrumenting a path cannot perturb a run.
* :class:`TickSampler` — an append-only series of ``(sim_time, value)``
  pairs recorded at simulation-driven instants.  Because samples are
  keyed by deterministic simulation state, two runs with the same seed
  produce identical sampler contents (asserted by tests).

Zero-overhead discipline
------------------------
Instrumented components hold ``perf: PerfRegistry | None`` and guard
every hook with ``if perf is not None``.  When profiling is off the
registry is simply absent: the disabled cost is one attribute load and
an identity check on the non-hot paths, and *nothing at all* inside the
kernel's event loop (the kernel selects an uninstrumented loop up
front — see :meth:`repro.sim.kernel.Simulator.run`).
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = [
    "PerfCounter",
    "PerfRegistry",
    "PerfTimer",
    "TickSampler",
]


class PerfCounter:
    """A named event count plus an optional accumulated value."""

    __slots__ = ("name", "count", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.value = 0.0

    def inc(self, n: int = 1) -> None:
        """Add *n* occurrences."""
        self.count += n

    def add(self, value: float, n: int = 1) -> None:
        """Add *n* occurrences carrying *value* (bytes, cells, ...)."""
        self.count += n
        self.value += value

    def snapshot(self) -> dict:
        """Plain-data view (stable keys; see docs/BENCHMARKS.md)."""
        return {"count": self.count, "value": self.value}


class PerfTimer:
    """Wall-clock duration statistics for one instrumented scope.

    Use either the context-manager form::

        with registry.timer("geometry.decompose"):
            ...

    or the explicit form for code that cannot afford a ``with`` frame::

        t0 = timer.start()
        ...
        timer.stop(t0)

    A bounded reservoir of raw durations is kept (first
    ``max_samples``) so reports can show p50/p99 without unbounded
    memory growth on long runs.
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "samples", "_cap", "_entered"
    )

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.samples: list[float] = []
        self._cap = max_samples

    @staticmethod
    def start() -> float:
        """A timestamp to later pass to :meth:`stop`."""
        return time.perf_counter()

    def stop(self, started: float) -> float:
        """Record the duration since *started*; returns it."""
        elapsed = time.perf_counter() - started
        self.record(elapsed)
        return elapsed

    def record(self, elapsed: float) -> None:
        """Record one measured duration in seconds."""
        self.count += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed
        if len(self.samples) < self._cap:
            self.samples.append(elapsed)

    def __enter__(self) -> "PerfTimer":
        self._entered = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stop(self._entered)

    @property
    def mean(self) -> float:
        """Mean duration in seconds (0 when never fired)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile of the sampled durations (seconds)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round((q / 100.0) * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        """Plain-data view (stable keys; see docs/BENCHMARKS.md)."""
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_us": self.mean * 1e6,
            "min_us": (self.min if self.count else 0.0) * 1e6,
            "max_us": self.max * 1e6,
            "p50_us": self.percentile(50) * 1e6,
            "p99_us": self.percentile(99) * 1e6,
        }


class TickSampler:
    """A deterministic ``(sim_time, value)`` series.

    Values come from simulation state (queue lengths, live counts), so
    the recorded series depends only on the seed — never on wall time.
    """

    __slots__ = ("name", "times", "values", "_cap")

    def __init__(self, name: str, max_samples: int = 262144) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []
        self._cap = max_samples

    def __len__(self) -> int:
        return len(self.times)

    def record(self, sim_time: float, value: float) -> None:
        """Append one sample (silently capped at ``max_samples``)."""
        if len(self.times) < self._cap:
            self.times.append(sim_time)
            self.values.append(value)

    def last(self) -> float:
        """Most recent value (0 when empty)."""
        return self.values[-1] if self.values else 0.0

    def snapshot(self) -> dict:
        """Summary view: count plus min/mean/max of the values."""
        if not self.values:
            return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "count": len(self.values),
            "min": min(self.values),
            "mean": sum(self.values) / len(self.values),
            "max": max(self.values),
        }


class PerfRegistry:
    """The per-run home of every counter, timer and sampler.

    One registry is created per instrumented experiment and threaded
    down through the simulator, network, runtime and geometry layers.
    Instruments are created on first use under a dotted name
    (``layer.component.metric``) and shared by name afterwards, so two
    call sites naming the same counter accumulate into one cell.
    """

    def __init__(
        self,
        step_sample_every: int = 64,
        timer_max_samples: int = 65536,
    ) -> None:
        if step_sample_every < 1:
            raise ValueError(
                f"step_sample_every must be >= 1: {step_sample_every}"
            )
        #: Sample one kernel step's wall latency out of every N steps.
        self.step_sample_every = step_sample_every
        self._timer_max_samples = timer_max_samples
        self.counters: dict[str, PerfCounter] = {}
        self.timers: dict[str, PerfTimer] = {}
        self.samplers: dict[str, TickSampler] = {}

    # ------------------------------------------------------------------
    # Instrument access (create-on-first-use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> PerfCounter:
        """The counter registered under *name* (created if absent)."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = PerfCounter(name)
        return counter

    def timer(self, name: str) -> PerfTimer:
        """The timer registered under *name* (created if absent)."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = PerfTimer(
                name, max_samples=self._timer_max_samples
            )
        return timer

    def sampler(self, name: str) -> TickSampler:
        """The sampler registered under *name* (created if absent)."""
        sampler = self.samplers.get(name)
        if sampler is None:
            sampler = self.samplers[name] = TickSampler(name)
        return sampler

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data dump of every instrument, sorted by name.

        This is the schema ``BENCH_perf_suite.json`` and the ``perf``
        CLI report are built from; keys are stable by contract (see the
        schema-regression test).
        """
        return {
            "counters": {
                name: self.counters[name].snapshot()
                for name in sorted(self.counters)
            },
            "timers": {
                name: self.timers[name].snapshot()
                for name in sorted(self.timers)
            },
            "samplers": {
                name: self.samplers[name].snapshot()
                for name in sorted(self.samplers)
            },
        }

    def visit(self, fn: Callable[[str, object], None]) -> None:
        """Call *fn(name, instrument)* for every instrument (tests)."""
        for table in (self.counters, self.timers, self.samplers):
            for name, instrument in table.items():
                fn(name, instrument)
