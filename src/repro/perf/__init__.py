"""Performance instrumentation for the simulation core.

The subsystem is deliberately tiny: a :class:`PerfRegistry` of named
counters, wall-clock timers and deterministic tick samplers, threaded
through the four hot layers (``sim`` kernel loop, ``net`` delivery and
middleware, ``core.runtime`` routing, ``geometry`` index builds).  It
is **off by default** and adds nothing to the kernel's event loop when
off; enable it with ``MatrixConfig.perf.enabled = True`` or via
``python -m repro perf``.

See ``docs/ARCHITECTURE.md`` ("Perf instrumentation") for where each
hook sits and ``docs/BENCHMARKS.md`` for the metric naming scheme.
"""

from repro.perf.instruments import (
    PerfCounter,
    PerfRegistry,
    PerfTimer,
    TickSampler,
)
from repro.perf.report import format_report

__all__ = [
    "PerfCounter",
    "PerfRegistry",
    "PerfTimer",
    "TickSampler",
    "format_report",
]
