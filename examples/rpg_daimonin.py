#!/usr/bin/env python
"""Daimonin RPG scenario: a town meeting, plus non-proximal interactions.

Demonstrates two things on the MMORPG workload profile:

1. The §4.1 motivating scenario — "particular areas in the game become
   popular suddenly, like the town hall during a town meeting" — and
   Matrix provisioning servers for the town without touching the rest
   of the big world.
2. The *non-proximal interaction* path (§3.2.4): Daimonin players
   occasionally shout across the map; those packets carry a remote
   destination tag, and the game server can also resolve consistency
   sets for arbitrary points through the Matrix Coordinator.

Run:  python examples/rpg_daimonin.py
"""

from repro.core.config import LoadPolicyConfig
from repro.games.profile import daimonin_profile
from repro.geometry import Vec2
from repro.harness.experiment import MatrixExperiment


def main() -> None:
    profile = daimonin_profile()
    policy = LoadPolicyConfig(overload_clients=50, underload_clients=25)
    experiment = MatrixExperiment(profile, policy=policy, seed=7)

    world = profile.world
    town_hall = Vec2(world.width * 0.625, world.height * 0.5)

    # The world's normal population, wandering the 1600x1600 map.
    experiment.fleet.spawn_background(30, at=0.0)
    # The town meeting: 100 players converge on the town hall.
    experiment.fleet.spawn_hotspot(
        100, town_hall, spread=profile.visibility_radius,
        at=20.0, group="meeting",
    )
    # Meeting adjourns.
    experiment.fleet.depart_group(
        "meeting", batch_size=34, start=140.0, interval=15.0
    )

    # Demonstrate the non-proximal query API: once the world has split,
    # ask the MC which game servers must hear about an event at the
    # town hall (e.g. a server-wide quest announcement anchored there).
    answers = []

    def ask_coordinator() -> None:
        servers = sorted(experiment.deployment.game_servers)
        first = experiment.deployment.game_servers[servers[0]]
        first.port.query_consistency(
            town_hall, lambda result: answers.append((experiment.sim.now, result))
        )

    experiment.sim.at(100.0, ask_coordinator)

    result = experiment.run(until=240.0)

    print(f"town meeting on {profile.name}: "
          f"{result.splits_completed} splits, "
          f"{result.reclaims_completed} reclaims, "
          f"peak {result.peak_servers_in_use} servers")
    print("\nserver lifecycle:")
    for event in result.server_events:
        print(f"  t={event.time:6.1f}s  {event.kind:<13} {event.game_server}")

    for when, servers in answers:
        print(f"\nnon-proximal query at t={when:.1f}s: an event at the "
              f"town hall {town_hall.as_tuple()} must be propagated to: "
              f"{sorted(servers) or '(no other servers)'}")

    shouts = sum(
        gs.remote_actions_seen
        for gs in experiment.deployment.game_servers.values()
    )
    print(f"\ncross-server events delivered (shouts + border actions): "
          f"{shouts}")
    print(f"final server count: {result.final_server_count():.0f} — the "
          f"rest of the world never noticed the meeting.")


if __name__ == "__main__":
    main()
