#!/usr/bin/env python
"""Figure 2, live: the BzFlag 600-client hotspot experiment.

Reproduces the paper's §4.1 experiment end to end and renders both
panels of Figure 2 as ASCII charts — clients per server (2a) and
receive-queue length per server (2b) — plus the split/reclamation
timeline the paper's caption describes.

Run:  python examples/hotspot_bzflag.py            (scaled, ~10 s)
      FULL_SCALE=1 python examples/hotspot_bzflag.py   (paper scale, ~1 min)
"""

import os

from repro.analysis.asciiplot import render_series
from repro.games.profile import bzflag_profile
from repro.harness.compare import scaled_profile
from repro.harness.experiment import MatrixExperiment
from repro.harness.fig2 import Fig2Schedule, install_fig2_workload
from repro.core.config import LoadPolicyConfig


def main() -> None:
    full_scale = os.environ.get("FULL_SCALE") == "1"
    scale = 1.0 if full_scale else 0.2

    profile = scaled_profile(bzflag_profile(), scale)
    schedule = Fig2Schedule().scaled(scale)
    policy = LoadPolicyConfig(
        overload_clients=max(6, int(300 * scale)),
        underload_clients=max(3, int(150 * scale)),
    )

    print(f"Running the Fig 2 hotspot at scale={scale} "
          f"({schedule.hotspot_clients}-client hotspot, "
          f"overload threshold {policy.overload_clients})...")
    experiment = MatrixExperiment(profile, policy=policy, seed=1)
    install_fig2_workload(experiment, schedule)
    result = experiment.run(until=schedule.duration)

    print()
    print(render_series(
        result.clients_per_server,
        title="Figure 2a — number of clients per game server",
        y_label="clients",
    ))
    print()
    print(render_series(
        result.queue_per_server,
        title="Figure 2b — receive queue length per game server",
        y_label="queued packets",
    ))

    print("\ntimeline (paper caption events):")
    print(f"  t={schedule.hotspot1_at:.0f}s hotspot 1 "
          f"({schedule.hotspot_clients} clients) appears")
    for t in result.spawn_times():
        print(f"  t={t:.1f}s  SPLIT — new server deployed")
    print(f"  t={schedule.departures_start:.0f}s departures begin "
          f"({schedule.departure_batch}/batch)")
    for t in result.reclaim_times():
        print(f"  t={t:.1f}s  RECLAMATION — server returned to the pool")
    print(f"  t={schedule.hotspot2_at:.0f}s hotspot 2 appears elsewhere")

    print(f"\nsummary: {result.splits_completed} splits, "
          f"{result.reclaims_completed} reclaims, "
          f"peak {result.peak_servers_in_use} servers, "
          f"peak queue {result.max_queue():.0f}, "
          f"final server count {result.final_server_count():.0f}")


if __name__ == "__main__":
    main()
