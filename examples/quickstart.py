#!/usr/bin/env python
"""Quickstart: deploy a game on Matrix and watch it absorb a hotspot.

Builds the smallest end-to-end Matrix deployment — one coordinator, one
Matrix+game server pair, a client fleet — throws a hotspot at it, and
prints what the middleware did about it.

Run:  python examples/quickstart.py
"""

from repro.core.config import LoadPolicyConfig
from repro.games.profile import bzflag_profile
from repro.geometry import Vec2
from repro.harness.experiment import MatrixExperiment


def main() -> None:
    profile = bzflag_profile()

    # Scale the paper's 300/150-client thresholds down so the demo runs
    # in a couple of seconds; dynamics are identical.
    policy = LoadPolicyConfig(overload_clients=40, underload_clients=20)

    experiment = MatrixExperiment(profile, policy=policy, seed=42)
    print("Bootstrapped:", experiment.deployment.live_server_names(),
          "owning", experiment.config.world)

    # A quiet background population...
    experiment.fleet.spawn_background(15, at=0.0)
    # ...and a hotspot: 90 players pile onto one spot at t=10 s.
    center = Vec2(500.0, 400.0)
    experiment.fleet.spawn_hotspot(
        90, center, spread=50.0, at=10.0, group="party"
    )
    # The party ends at t=60 s: everyone leaves in batches of 30.
    experiment.fleet.depart_group(
        "party", batch_size=30, start=60.0, interval=10.0
    )

    result = experiment.run(until=150.0)

    print(f"\nsplits: {result.splits_completed}   "
          f"reclaims: {result.reclaims_completed}   "
          f"peak servers: {result.peak_servers_in_use}")
    print("server lifecycle:")
    for event in result.server_events:
        print(f"  t={event.time:6.1f}s  {event.kind:<13} "
              f"{event.matrix_server} / {event.game_server}")

    print("\nclients per server over time (sampled every 20 s):")
    header = "  t(s)  " + "".join(
        f"{name:>8}" for name in sorted(result.clients_per_server)
    )
    print(header)
    for t in range(0, 150, 20):
        row = f"  {t:4d}  "
        for name in sorted(result.clients_per_server):
            series = result.clients_per_server[name]
            if len(series) == 0 or t < series.times[0] or t > series.times[-1]:
                value = "-"  # server not alive at this time
            else:
                value = f"{series.at(t):.0f}"
            row += f"{value:>8}"
        print(row)

    if result.switch_latencies:
        mean = sum(result.switch_latencies) / len(result.switch_latencies)
        print(f"\nclient handoffs: {len(result.switch_latencies)} "
              f"(mean latency {mean * 1000:.0f} ms) — all invisible to "
              f"the game code, which never learned Matrix exists.")


if __name__ == "__main__":
    main()
