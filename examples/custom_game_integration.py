#!/usr/bin/env python
"""Porting your own game onto Matrix — the developer's-eye view.

The paper's pitch (§2.1) is that a game studio without distributed-
systems expertise can adopt Matrix with "almost no modifications to the
game client, and relatively simple modifications to the server code".
This example is that exercise: a tiny custom game server — a capture-
the-flag arena with its own packet types and logic — written against
nothing but the public :class:`repro.core.api.MatrixPort` API:

* tag outbound packets with coordinates (``port.send_spatial``),
* report load periodically (``port.report_load``),
* consume two callbacks (``on_deliver``, ``on_set_range``),
* route Matrix's message kinds to ``port.handle`` with one
  ``@handles`` registration.

Everything else — splits, reclaims, routing, consistency — happens
underneath, and this file never imports any of it.

Run:  python examples/custom_game_integration.py
"""

from dataclasses import dataclass

from repro.core.api import MatrixPort, PORT_KINDS
from repro.core.config import LoadPolicyConfig, MatrixConfig
from repro.core.deployment import MatrixDeployment
from repro.geometry import Rect, Vec2
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node, handles
from repro.sim.kernel import Simulator

WORLD = Rect(0.0, 0.0, 400.0, 400.0)
RADIUS = 30.0


@dataclass
class FlagGrab:
    """Our game's own packet type; Matrix never inspects it."""

    player: str
    at: Vec2


class CtfServer(Node):
    """A minimal custom game server integrated with Matrix."""

    def __init__(self, name: str, partition: Rect) -> None:
        super().__init__(name, service_rate=500.0)
        self.partition = partition
        self.players: dict[str, Vec2] = {}
        self.remote_grabs: list[FlagGrab] = []
        # --- the entire Matrix integration: one port + two callbacks.
        self.port = MatrixPort(self, visibility_radius=RADIUS)
        self.port.on_deliver = lambda pkt: self.remote_grabs.append(pkt.payload)
        self.port.on_set_range = self._range_changed

    # The deployment contract (GameServerHandle):
    @property
    def client_count(self) -> int:
        return len(self.players)

    def client_positions(self):
        return list(self.players.values())

    def bind_matrix(self, matrix_name: str, partition: Rect) -> None:
        self.port.bind(matrix_name)
        self.partition = partition
        self.sim.every(1.0, lambda: self.port.report_load(
            len(self.players), self.inbox.length))

    def _range_changed(self, directive) -> None:
        self.partition = directive.partition
        print(f"    [{self.name}] now serving {directive.partition}")

    # Game logic: players grab flags; grabs near a border must reach
    # the neighbouring server — via Matrix, transparently.
    def grab_flag(self, player: str, at: Vec2) -> None:
        self.players[player] = at
        self.port.send_spatial(
            origin=at, payload=FlagGrab(player=player, at=at),
            payload_bytes=48, client_id=player,
        )

    @handles(*PORT_KINDS)
    def _on_matrix_traffic(self, message: Message) -> None:
        self.port.handle(message)  # Matrix traffic, absorbed by the port

    # ... handlers for our own client protocol would be registered
    # here with further @handles("...") methods ...


def main() -> None:
    sim = Simulator()
    network = Network(sim)
    config = MatrixConfig(
        world=WORLD,
        visibility_radius=RADIUS,
        policy=LoadPolicyConfig(overload_clients=10, underload_clients=5),
    )
    deployment = MatrixDeployment(
        sim, network, config, game_server_factory=CtfServer
    )
    # Start pre-partitioned so cross-server propagation shows right away.
    pairs = deployment.bootstrap_grid(2, 1)
    sim.run(until=2.0)  # let the MC distribute overlap tables

    left_gs = pairs[0][1]
    right_gs = pairs[1][1]
    print(f"two servers up: {left_gs.name} {left_gs.partition}, "
          f"{right_gs.name} {right_gs.partition}")

    # A grab deep inside the left half: local only.
    left_gs.grab_flag("alice", Vec2(50.0, 200.0))
    # A grab just left of the border: the right server must hear it.
    left_gs.grab_flag("bob", Vec2(195.0, 200.0))
    sim.run(until=4.0)

    print(f"\nright server saw {len(right_gs.remote_grabs)} remote grab(s):")
    for grab in right_gs.remote_grabs:
        print(f"    {grab.player} at {grab.at.as_tuple()}")
    assert len(right_gs.remote_grabs) == 1, "border grab must propagate"
    assert right_gs.remote_grabs[0].player == "bob"
    print("\nalice's interior grab stayed local; bob's border grab was "
          "propagated — and CtfServer never named another server.")


if __name__ == "__main__":
    main()
