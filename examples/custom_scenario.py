#!/usr/bin/env python
"""Define a custom scenario through the registry and run it everywhere.

A scenario is *data*: named phases of arrivals, hotspots, migrations,
departures and churn.  Register one factory and the whole platform —
the unified runner, the CLI (``python -m repro run siege-and-rout``),
the sweep benchmark — can execute it against Matrix *and* the static
baseline without further wiring.

Run:  PYTHONPATH=src python examples/custom_scenario.py
"""

from repro.core.config import LoadPolicyConfig
from repro.games.profile import profile_by_name
from repro.harness.compare import scaled_profile
from repro.harness.runner import run_scenario
from repro.workload.mobility import MobilitySpec
from repro.workload.scenarios import (
    ArrivalWave,
    Churn,
    Departure,
    HotspotWave,
    MapPoint,
    Migration,
    Scenario,
    scenario,
    scenario_names,
)


@scenario("siege-and-rout")
def siege_and_rout() -> Scenario:
    """A castle siege: flocks converge, besiege, then rout and flee."""
    return Scenario(
        name="siege-and-rout",
        description=(
            "Two attacking flocks converge on the keep while defenders "
            "loiter there; churn models reinforcements; at t=90 the "
            "attack breaks and the besiegers rout to the map edge, "
            "then drain away."
        ),
        game="bzflag",
        duration=160.0,
        phases=(
            # Defenders loiter at the keep from the start.
            HotspotWave(
                count=150,
                center=MapPoint(0.5, 0.5),
                at=0.0,
                group="defenders",
            ),
            # Two flocks of attackers march in from opposite corners.
            ArrivalWave(
                count=120,
                at=10.0,
                group="attackers-north",
                mobility=MobilitySpec("flock", {"spacing": 10.0}),
                center=MapPoint(0.15, 0.85),
                spread_fraction=0.5,
            ),
            ArrivalWave(
                count=120,
                at=10.0,
                group="attackers-south",
                mobility=MobilitySpec("flock", {"spacing": 10.0}),
                center=MapPoint(0.85, 0.15),
                spread_fraction=0.5,
            ),
            # Both flocks converge on the keep.
            Migration(group="attackers-north", center=MapPoint(0.5, 0.5),
                      at=15.0),
            Migration(group="attackers-south", center=MapPoint(0.5, 0.5),
                      at=15.0),
            # Reinforcements trickle in while the siege holds.
            Churn(rate=2.0, start=20.0, stop=90.0, session=30.0),
            # The rout: attackers flee to the west edge...
            Migration(group="attackers-north", center=MapPoint(0.05, 0.5),
                      at=90.0),
            Migration(group="attackers-south", center=MapPoint(0.05, 0.5),
                      at=90.0),
            # ...and log off in waves.
            Departure(group="attackers-north", batch=40, start=110.0,
                      interval=8.0),
            Departure(group="attackers-south", batch=40, start=110.0,
                      interval=8.0),
        ),
    )


def main() -> None:
    print("registered scenarios now include:", ", ".join(scenario_names()))
    print()

    scale = 0.2  # run at a fifth of the population for a fast demo
    profile = scaled_profile(profile_by_name("bzflag"), scale)
    policy = LoadPolicyConfig().scaled(scale)

    for backend in ("matrix", "static"):
        options = {"policy": policy} if backend == "matrix" else {}
        outcome = run_scenario(
            "siege-and-rout",
            backend=backend,
            profile=profile,
            scale=scale,
            seed=7,
            **options,
        )
        result = outcome.result
        print(f"[{backend}]")
        if backend == "matrix":
            print(f"  servers: peak {result.peak_servers_in_use}, "
                  f"splits {result.splits_completed}, "
                  f"reclaims {result.reclaims_completed}")
        else:
            print(f"  servers: {len(outcome.experiment.deployment.game_servers)}"
                  f" (fixed), dropped {result.dropped_packets} packets")
        print(f"  peak queue: {result.max_queue():.0f}")
        print()
    print("the siege forces Matrix to split around the keep; the static")
    print("grid takes the same workload on two fixed servers.")


if __name__ == "__main__":
    main()
